//! Pairing relations — the candidate filter of §4.2 (Proposition 9).
//!
//! A pair `(e1, e2)` *can be paired* by a key `Q(x)` if there is a ternary
//! relation `P^Q` over (side-1 node, side-2 node, pattern slot) that is
//! locally consistent: every triple of the pattern incident to a slot must
//! be supported on both sides by edges leading to other members of the
//! relation. Pairing is **necessary** for identification (actual coinciding
//! matches are contained in the maximum pairing relation), and the maximum
//! pairing relation is unique and computable in `O(|Q|·|G^d_1|·|G^d_2|)`
//! time — so it is a cheap, sound pre-filter for the expensive isomorphism
//! checks. The paper uses it to (1) shrink the candidate set `L`, (2) shrink
//! the d-neighborhoods, and (3) derive the dependency edges of the product
//! graph (§5.1).

use crate::pairpattern::{PairPattern, SlotKind};
use gk_graph::{EntityId, GraphView, NodeId, NodeSet, Obj};
use rustc_hash::FxHashSet;

/// The maximum pairing relation of one pattern, grouped by slot:
/// `per_slot[q]` holds the (side-1, side-2) node pairs admissible for
/// pattern slot `q`.
#[derive(Debug, Clone, Default)]
pub struct Pairing {
    /// Admissible node pairs, indexed by pattern slot.
    pub per_slot: Vec<FxHashSet<(NodeId, NodeId)>>,
}

impl Pairing {
    /// True iff the anchor pair `(e1, e2)` survived pruning — i.e. the pair
    /// *can be paired* by the pattern (necessary condition for
    /// identification).
    pub fn pairable(&self, q: &PairPattern, e1: EntityId, e2: EntityId) -> bool {
        self.per_slot[q.anchor() as usize].contains(&(NodeId::entity(e1), NodeId::entity(e2)))
    }

    /// All side-1 nodes appearing anywhere in the relation (plus side-2 via
    /// `side == 1`). Used to build the *reduced* d-neighborhoods of §4.2.
    pub fn side_nodes(&self, side: usize) -> NodeSet {
        assert!(side == 0 || side == 1);
        let mut v = Vec::new();
        for set in &self.per_slot {
            for &(a, b) in set {
                v.push(if side == 0 { a } else { b });
            }
        }
        NodeSet::from_nodes(v)
    }

    /// For every recursive (`EqEntity`) slot, does an *identity* pair
    /// `(o, o)` exist? If so the key could fire against the initial `Eq0`;
    /// if not, the pair must wait for some dependency to be identified
    /// first. Drives the entity-dependency seeding of §4.2.
    pub fn recursive_identity_possible(&self, q: &PairPattern) -> bool {
        q.recursive_slots()
            .all(|slot| self.per_slot[slot as usize].iter().any(|&(a, b)| a == b))
    }

    /// Entity pairs `(a, b)` with `a ≠ b` occurring in recursive slots —
    /// the candidate *dependencies* of the anchor pair: identifying such a
    /// pair may enable this key. Feeds `dep` edges (§4.2, §5.1).
    pub fn dependency_pairs(&self, q: &PairPattern) -> Vec<(EntityId, EntityId)> {
        let mut out = Vec::new();
        for slot in q.recursive_slots() {
            for &(a, b) in &self.per_slot[slot as usize] {
                if a != b {
                    if let (Some(x), Some(y)) = (a.as_entity(), b.as_entity()) {
                        // Normalize order so callers can dedup.
                        out.push(if x <= y { (x, y) } else { (y, x) });
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total number of (slot, pair) facts — diagnostics.
    pub fn len(&self) -> usize {
        self.per_slot.iter().map(|s| s.len()).sum()
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the maximum pairing relation of `q` seeded with the given
/// anchor pairs, optionally restricted to per-side scopes.
///
/// With a single seed `(e1, e2)` this is the paper's `P^Q` at `(e1, e2)`
/// (Prop. 9); seeding all candidate pairs of a type at once yields the
/// global relation used to build the product graph (§5.1).
pub fn pairing_seeded<G: GraphView>(
    g: &G,
    q: &PairPattern,
    seeds: &[(EntityId, EntityId)],
    scope1: Option<&NodeSet>,
    scope2: Option<&NodeSet>,
) -> Pairing {
    let nslots = q.slots().len();
    let mut per_slot: Vec<FxHashSet<(NodeId, NodeId)>> = vec![FxHashSet::default(); nslots];

    let in_scope = |n1: NodeId, n2: NodeId| {
        scope1.is_none_or(|s| s.contains(n1)) && scope2.is_none_or(|s| s.contains(n2))
    };

    let ty = q.anchor_type();
    for &(a, b) in seeds {
        let (n1, n2) = (NodeId::entity(a), NodeId::entity(b));
        if g.entity_type(a) == ty && g.entity_type(b) == ty && in_scope(n1, n2) {
            per_slot[q.anchor() as usize].insert((n1, n2));
        }
    }

    // Local admissibility of a (pair, slot) fact — Prop. 9 condition (2a).
    let admissible = |slot: usize, n1: NodeId, n2: NodeId| -> bool {
        if !in_scope(n1, n2) {
            return false;
        }
        match q.slots()[slot] {
            SlotKind::Anchor(_) => false, // only seeds populate the anchor
            SlotKind::EqEntity(t) | SlotKind::Wildcard(t) => {
                match (n1.as_entity(), n2.as_entity()) {
                    (Some(a), Some(b)) => g.entity_type(a) == t && g.entity_type(b) == t,
                    _ => false,
                }
            }
            SlotKind::ValueVar => n1.is_value() && n1 == n2,
            SlotKind::Const(d) => n1 == NodeId::value(d) && n2 == n1,
        }
    };

    // Grow phase: propagate candidates along pattern triples until fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for tri in q.triples() {
            // Forward: from subject pairs derive object pairs.
            let derived: Vec<(NodeId, NodeId)> = per_slot[tri.s as usize]
                .iter()
                .flat_map(|&(s1, s2)| {
                    let se1 = s1.as_entity().expect("entity subject");
                    let se2 = s2.as_entity().expect("entity subject");
                    let outs2: Vec<Obj> = g.out_with(se2, tri.p).iter().map(|&(_, o)| o).collect();
                    g.out_with(se1, tri.p)
                        .iter()
                        .flat_map(move |&(_, o1)| {
                            outs2
                                .clone()
                                .into_iter()
                                .map(move |o2| (o1.node(), o2.node()))
                        })
                        .collect::<Vec<_>>()
                })
                .filter(|&(o1, o2)| admissible(tri.o as usize, o1, o2))
                .collect();
            for p in derived {
                changed |= per_slot[tri.o as usize].insert(p);
            }
            // Backward: from object pairs derive subject pairs.
            let derived: Vec<(NodeId, NodeId)> = per_slot[tri.o as usize]
                .iter()
                .flat_map(|&(o1, o2)| {
                    let ins2: Vec<EntityId> =
                        g.in_with(o2, tri.p).iter().map(|&(_, s)| s).collect();
                    g.in_with(o1, tri.p)
                        .iter()
                        .flat_map(move |&(_, s1)| {
                            ins2.clone()
                                .into_iter()
                                .map(move |s2| (NodeId::entity(s1), NodeId::entity(s2)))
                        })
                        .collect::<Vec<_>>()
                })
                .filter(|&(s1, s2)| admissible(tri.s as usize, s1, s2))
                .collect();
            for p in derived {
                changed |= per_slot[tri.s as usize].insert(p);
            }
        }
    }

    // Prune phase: repeatedly remove facts lacking support on some incident
    // triple — Prop. 9 condition (2b) — until the relation is stable.
    let mut changed = true;
    while changed {
        changed = false;
        for (ti, tri) in q.triples().iter().enumerate() {
            let _ = ti;
            // Subject-side support: (s1,s2) needs some (o1,o2) in P[o] with
            // edges (s1,p,o1) and (s2,p,o2).
            let objs = per_slot[tri.o as usize].clone();
            let before = per_slot[tri.s as usize].len();
            per_slot[tri.s as usize].retain(|&(s1, s2)| {
                let se1 = s1.as_entity().expect("entity subject");
                let se2 = s2.as_entity().expect("entity subject");
                g.out_with(se1, tri.p).iter().any(|&(_, o1)| {
                    g.out_with(se2, tri.p)
                        .iter()
                        .any(|&(_, o2)| objs.contains(&(o1.node(), o2.node())))
                })
            });
            changed |= per_slot[tri.s as usize].len() != before;

            // Object-side support.
            let subs = per_slot[tri.s as usize].clone();
            let before = per_slot[tri.o as usize].len();
            per_slot[tri.o as usize].retain(|&(o1, o2)| {
                g.in_with(o1, tri.p).iter().any(|&(_, s1)| {
                    g.in_with(o2, tri.p)
                        .iter()
                        .any(|&(_, s2)| subs.contains(&(NodeId::entity(s1), NodeId::entity(s2))))
                })
            });
            changed |= per_slot[tri.o as usize].len() != before;
        }
    }

    Pairing { per_slot }
}

/// Convenience: the pairing relation of `q` at a single candidate pair.
pub fn pairing_at<G: GraphView>(
    g: &G,
    q: &PairPattern,
    e1: EntityId,
    e2: EntityId,
    scope1: Option<&NodeSet>,
    scope2: Option<&NodeSet>,
) -> Pairing {
    pairing_seeded(g, q, &[(e1, e2)], scope1, scope2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::{eval_pair, MatchScope};
    use crate::pairpattern::{IdentityEq, PTriple, SlotKind};
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn pt(s: u16, p: gk_graph::PredId, o: u16) -> PTriple {
        PTriple { s, p, o }
    }

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Anthology 2"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    fn q2(g: &Graph) -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("album").unwrap()),
                SlotKind::ValueVar,
                SlotKind::ValueVar,
            ],
            vec![
                pt(0, g.pred("name_of").unwrap(), 1),
                pt(0, g.pred("release_year").unwrap(), 2),
            ],
            0,
        )
        .unwrap()
    }

    fn q3(g: &Graph) -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("artist").unwrap()),
                SlotKind::ValueVar,
                SlotKind::EqEntity(g.etype("album").unwrap()),
            ],
            vec![
                pt(0, g.pred("name_of").unwrap(), 1),
                pt(2, g.pred("recorded_by").unwrap(), 0),
            ],
            0,
        )
        .unwrap()
    }

    fn e(g: &Graph, n: &str) -> EntityId {
        g.entity_named(n).unwrap()
    }

    #[test]
    fn pairable_pairs_survive() {
        let g = g1();
        let q = q2(&g);
        let p = pairing_at(&g, &q, e(&g, "alb1"), e(&g, "alb2"), None, None);
        assert!(p.pairable(&q, e(&g, "alb1"), e(&g, "alb2")));
    }

    #[test]
    fn unpairable_pairs_are_pruned() {
        let g = g1();
        let q = q2(&g);
        // alb3 lacks release_year: cannot be paired by Q2.
        let p = pairing_at(&g, &q, e(&g, "alb1"), e(&g, "alb3"), None, None);
        assert!(!p.pairable(&q, e(&g, "alb1"), e(&g, "alb3")));
    }

    #[test]
    fn pairing_is_necessary_for_identification() {
        // Soundness of the filter (Prop. 9a): eval ⊆ pairable, on every
        // same-type pair of G1.
        let g = g1();
        for q in [q2(&g), q3(&g)] {
            let ty = q.anchor_type();
            let ents = g.entities_of_type(ty);
            for (i, &a) in ents.iter().enumerate() {
                for &b in &ents[i + 1..] {
                    let identified =
                        eval_pair(&g, &q, a, b, &IdentityEq, MatchScope::whole_graph());
                    let pairable = pairing_at(&g, &q, a, b, None, None).pairable(&q, a, b);
                    assert!(
                        !identified || pairable,
                        "identified but not pairable: ({a:?}, {b:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn recursive_key_pairing_ignores_eq() {
        // Pairing is static (type-level): art1/art2 CAN be paired by Q3
        // even though Q3 cannot fire under Eq0.
        let g = g1();
        let q = q3(&g);
        let p = pairing_at(&g, &q, e(&g, "art1"), e(&g, "art2"), None, None);
        assert!(p.pairable(&q, e(&g, "art1"), e(&g, "art2")));
        assert!(!eval_pair(
            &g,
            &q,
            e(&g, "art1"),
            e(&g, "art2"),
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn dependency_pairs_surface_recursive_candidates() {
        let g = g1();
        let q = q3(&g);
        let p = pairing_at(&g, &q, e(&g, "art1"), e(&g, "art2"), None, None);
        let deps = p.dependency_pairs(&q);
        // The artists' identification depends on (alb1, alb2).
        assert!(deps.contains(&(e(&g, "alb1"), e(&g, "alb2"))));
    }

    #[test]
    fn identity_possibility_detection() {
        let g = g1();
        let q3p = q3(&g);
        // art1/art2's recursive slot admits only distinct albums: no
        // identity binding, so not initially eligible.
        let p = pairing_at(&g, &q3p, e(&g, "art1"), e(&g, "art2"), None, None);
        assert!(!p.recursive_identity_possible(&q3p));

        // A same-artist key CAN use an identity binding.
        let g2 = parse_graph(
            r#"
            a1:album name_of "X"
            a2:album name_of "X"
            a1:album recorded_by r:artist
            a2:album recorded_by r:artist
            "#,
        )
        .unwrap();
        let q1 = PairPattern::new(
            vec![
                SlotKind::Anchor(g2.etype("album").unwrap()),
                SlotKind::ValueVar,
                SlotKind::EqEntity(g2.etype("artist").unwrap()),
            ],
            vec![
                pt(0, g2.pred("name_of").unwrap(), 1),
                pt(0, g2.pred("recorded_by").unwrap(), 2),
            ],
            0,
        )
        .unwrap();
        let p2 = pairing_at(&g2, &q1, e(&g2, "a1"), e(&g2, "a2"), None, None);
        assert!(p2.recursive_identity_possible(&q1));
    }

    #[test]
    fn global_seeding_covers_all_candidates() {
        let g = g1();
        let q = q2(&g);
        let albums = g.entities_of_type(g.etype("album").unwrap()).to_vec();
        let mut seeds = Vec::new();
        for (i, &a) in albums.iter().enumerate() {
            for &b in &albums[i + 1..] {
                seeds.push((a, b));
            }
        }
        let p = pairing_seeded(&g, &q, &seeds, None, None);
        assert!(p.pairable(&q, e(&g, "alb1"), e(&g, "alb2")));
        assert!(!p.pairable(&q, e(&g, "alb1"), e(&g, "alb3")));
        assert!(!p.pairable(&q, e(&g, "alb2"), e(&g, "alb3")));
    }

    #[test]
    fn side_nodes_shrink_neighborhoods() {
        let g = g1();
        let q = q2(&g);
        let a1 = e(&g, "alb1");
        let a2 = e(&g, "alb2");
        let p = pairing_at(&g, &q, a1, a2, None, None);
        let reduced = p.side_nodes(0);
        let full = gk_graph::d_neighborhood(&g, a1, q.radius());
        assert!(reduced.len() <= full.len());
        // The reduced scope still supports the match.
        assert!(reduced.contains(NodeId::entity(a1)));
    }

    #[test]
    fn empty_seed_gives_empty_pairing() {
        let g = g1();
        let q = q2(&g);
        let p = pairing_seeded(&g, &q, &[], None, None);
        assert!(p.is_empty());
    }
}
