//! The guided paired matcher — procedure `EvalMR` of the paper (§4.1).
//!
//! Given a key `Q(x)` and a candidate pair `(e1, e2)`, the naive approach
//! enumerates **all** isomorphic matches of `Q(x)` at `e1` and at `e2` and
//! then looks for a coinciding pair — two exponential enumerations. `EvalMR`
//! instead fuses both searches into one: it instantiates each pattern slot
//! `s_Q` with a *pair* `m[s_Q] = (s1, s2)` under three feasibility
//! conditions (injectivity, equality, guided expansion) and **terminates
//! early** as soon as one full instantiation is found (Lemma 8:
//! `(G, {Q(x)}) |= (e1, e2)` iff `m` can be fully instantiated).

use crate::pairpattern::{EqOracle, PairPattern, SlotKind, Step};
use gk_graph::{EntityId, GraphView, NodeId, NodeSet, Obj, PredId};

/// Restricts a matching problem to node scopes (the d-neighborhoods of the
/// paper's data-locality property, §4.1) .
///
/// `scope1` restricts side-1 bindings (`ν1` must stay inside `G^d_1`) and
/// `scope2` side-2 bindings. `None` means the whole graph.
#[derive(Default, Clone, Copy)]
pub struct MatchScope<'a> {
    /// Side-1 node scope (`G^d_1`).
    pub scope1: Option<&'a NodeSet>,
    /// Side-2 node scope (`G^d_2`).
    pub scope2: Option<&'a NodeSet>,
}

impl<'a> MatchScope<'a> {
    /// Unrestricted scope: match against the whole graph.
    pub fn whole_graph() -> Self {
        Self::default()
    }

    /// Restrict both sides.
    pub fn new(scope1: &'a NodeSet, scope2: &'a NodeSet) -> Self {
        MatchScope {
            scope1: Some(scope1),
            scope2: Some(scope2),
        }
    }

    #[inline]
    fn admits(&self, n1: NodeId, n2: NodeId) -> bool {
        self.scope1.is_none_or(|s| s.contains(n1)) && self.scope2.is_none_or(|s| s.contains(n2))
    }
}

/// Search-effort statistics from one guided evaluation, surfaced by the
/// server's EXPLAIN ANALYZE tracing (`TRACE` verb).
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalStats {
    /// Slot binding attempts fed into the feasibility check.
    pub bind_attempts: u64,
    /// Attempts rejected by the feasibility conditions (scope,
    /// injectivity, per-slot-kind equality, degree demands).
    pub infeasible: u64,
}

impl EvalStats {
    /// Merges another evaluation's effort into this one.
    pub fn absorb(&mut self, other: EvalStats) {
        self.bind_attempts += other.bind_attempts;
        self.infeasible += other.infeasible;
    }
}

/// Checks `(G, {Q(x)}, Eq) |= (e1, e2)`: does some pair of coinciding
/// matches of `Q(x)` exist at `e1` and `e2` under the current `Eq`?
///
/// Early-terminating: stops at the first full instantiation.
pub fn eval_pair<G: GraphView, E: EqOracle + ?Sized>(
    g: &G,
    q: &PairPattern,
    e1: EntityId,
    e2: EntityId,
    eq: &E,
    scope: MatchScope<'_>,
) -> bool {
    eval_pair_witness(g, q, e1, e2, eq, scope).is_some()
}

/// Like [`eval_pair`] but returns the witness instantiation vector
/// `m[s_Q] = (s1, s2)` (indexed by slot), used to build proof graphs.
pub fn eval_pair_witness<G: GraphView, E: EqOracle + ?Sized>(
    g: &G,
    q: &PairPattern,
    e1: EntityId,
    e2: EntityId,
    eq: &E,
    scope: MatchScope<'_>,
) -> Option<Vec<(NodeId, NodeId)>> {
    eval_pair_stats(g, q, e1, e2, eq, scope).0
}

/// Like [`eval_pair_witness`] but also reports the search effort spent,
/// whether or not a witness was found. A pair rejected by the anchor
/// pre-checks (type, scope, degree) reports zero effort.
pub fn eval_pair_stats<G: GraphView, E: EqOracle + ?Sized>(
    g: &G,
    q: &PairPattern,
    e1: EntityId,
    e2: EntityId,
    eq: &E,
    scope: MatchScope<'_>,
) -> (Option<Vec<(NodeId, NodeId)>>, EvalStats) {
    let ty = q.anchor_type();
    if g.entity_type(e1) != ty || g.entity_type(e2) != ty {
        return (None, EvalStats::default());
    }
    let n1 = NodeId::entity(e1);
    let n2 = NodeId::entity(e2);
    if !scope.admits(n1, n2) {
        return (None, EvalStats::default());
    }
    // Degree pre-check: the anchors must carry at least as many edges as
    // the pattern demands of the designated variable (injectivity maps
    // distinct pattern triples to distinct graph edges).
    let req = q.anchor_req();
    if (req.out + req.loops > 0
        && (g.out(e1).len() < (req.out + req.loops) as usize
            || g.out(e2).len() < (req.out + req.loops) as usize))
        || (req.inc + req.loops > 0
            && (g.in_entity(e1).len() < (req.inc + req.loops) as usize
                || g.in_entity(e2).len() < (req.inc + req.loops) as usize))
    {
        return (None, EvalStats::default());
    }
    let mut s = Searcher {
        g,
        q,
        eq,
        scope,
        m: vec![None; q.slots().len()],
        stats: EvalStats::default(),
    };
    s.m[q.anchor() as usize] = Some((n1, n2));
    if s.search(0) {
        let witness =
            s.m.into_iter()
                .map(|b| b.expect("full instantiation"))
                .collect();
        (Some(witness), s.stats)
    } else {
        (None, s.stats)
    }
}

struct Searcher<'a, G, E: ?Sized> {
    g: &'a G,
    q: &'a PairPattern,
    eq: &'a E,
    scope: MatchScope<'a>,
    /// The instantiation vector `m`: `None` is the paper's `⊥`.
    m: Vec<Option<(NodeId, NodeId)>>,
    stats: EvalStats,
}

impl<G: GraphView, E: EqOracle + ?Sized> Searcher<'_, G, E> {
    fn search(&mut self, step_idx: usize) -> bool {
        let Some(&step) = self.q.plan().get(step_idx) else {
            return true; // all steps done: m fully instantiated and verified
        };
        match step {
            Step::CheckEdge { t } => {
                let tri = self.q.triples()[t as usize];
                let (s1, s2) = self.m[tri.s as usize].expect("planned bound");
                let (o1, o2) = self.m[tri.o as usize].expect("planned bound");
                let se1 = s1.as_entity().expect("subject is entity");
                let se2 = s2.as_entity().expect("subject is entity");
                if self.g.has(se1, tri.p, o1.to_obj()) && self.g.has(se2, tri.p, o2.to_obj()) {
                    self.search(step_idx + 1)
                } else {
                    false
                }
            }
            Step::ExpandForward { t } => {
                let tri = self.q.triples()[t as usize];
                let (s1, s2) = self.m[tri.s as usize].expect("planned bound");
                let se1 = s1.as_entity().expect("subject is entity");
                let se2 = s2.as_entity().expect("subject is entity");
                self.expand_forward(step_idx, tri.o, tri.p, se1, se2)
            }
            Step::ExpandBackward { t } => {
                let tri = self.q.triples()[t as usize];
                let (o1, o2) = self.m[tri.o as usize].expect("planned bound");
                self.expand_backward(step_idx, tri.s, tri.p, o1, o2)
            }
        }
    }

    /// Feasibility conditions of `EvalMR` (§4.1): injectivity, equality
    /// (per slot kind) and scope membership. Guided expansion is implicit:
    /// candidates are drawn from adjacency lists of already-bound slots.
    fn feasible(&self, slot: u16, n1: NodeId, n2: NodeId) -> bool {
        if !self.scope.admits(n1, n2) {
            return false;
        }
        // Injectivity: ν1 and ν2 are each injective over the pattern, so a
        // node may not repeat on its side. Patterns are small; a linear scan
        // beats a hash set here.
        for b in self.m.iter().flatten() {
            if b.0 == n1 || b.1 == n2 {
                return false;
            }
        }
        match self.q.slots()[slot as usize] {
            SlotKind::Anchor(_) => false, // pre-bound, never expanded into
            SlotKind::EqEntity(ty) => match (n1.as_entity(), n2.as_entity()) {
                (Some(a), Some(b)) => {
                    self.g.entity_type(a) == ty
                        && self.g.entity_type(b) == ty
                        && self.degree_ok(slot, a, b)
                        && self.eq.same(a, b)
                }
                _ => false,
            },
            SlotKind::Wildcard(ty) => match (n1.as_entity(), n2.as_entity()) {
                (Some(a), Some(b)) => {
                    self.g.entity_type(a) == ty
                        && self.g.entity_type(b) == ty
                        && self.degree_ok(slot, a, b)
                }
                _ => false,
            },
            SlotKind::ValueVar => n1.is_value() && n1 == n2,
            SlotKind::Const(d) => n1 == NodeId::value(d) && n2 == NodeId::value(d),
        }
    }

    /// Degree pruning for entity slots: the candidates must carry at
    /// least as many edges as the slot has incident pattern triples.
    /// Requirements of 1 are already implied by the adjacency edge the
    /// expansion arrived through, so only multi-edge demands are checked
    /// (each check builds two merged adjacency views).
    fn degree_ok(&self, slot: u16, a: EntityId, b: EntityId) -> bool {
        let req = self.q.slot_req(slot);
        let out = (req.out + req.loops) as usize;
        let inc = (req.inc + req.loops) as usize;
        (out < 2 || (self.g.out(a).len() >= out && self.g.out(b).len() >= out))
            && (inc < 2 || (self.g.in_entity(a).len() >= inc && self.g.in_entity(b).len() >= inc))
    }

    fn try_bind(&mut self, step_idx: usize, slot: u16, n1: NodeId, n2: NodeId) -> bool {
        self.stats.bind_attempts += 1;
        if !self.feasible(slot, n1, n2) {
            self.stats.infeasible += 1;
            return false;
        }
        self.m[slot as usize] = Some((n1, n2));
        if self.search(step_idx + 1) {
            return true;
        }
        self.m[slot as usize] = None; // backtrack
        false
    }

    fn expand_forward(
        &mut self,
        step_idx: usize,
        slot: u16,
        p: PredId,
        s1: EntityId,
        s2: EntityId,
    ) -> bool {
        match self.q.slots()[slot as usize] {
            SlotKind::Const(d) => {
                // Single candidate: both sides must carry (p, d).
                let o = Obj::Value(d);
                self.g.has(s1, p, o)
                    && self.g.has(s2, p, o)
                    && self.try_bind(step_idx, slot, o.node(), o.node())
            }
            SlotKind::ValueVar => {
                // Both adjacency views iterate sorted by object, so the
                // common values are a sorted-merge intersection.
                let mut a = self.g.out_with(s1, p).iter().peekable();
                let mut b = self.g.out_with(s2, p).iter().peekable();
                while let (Some(&&(_, oa)), Some(&&(_, ob))) = (a.peek(), b.peek()) {
                    match oa.cmp(&ob) {
                        std::cmp::Ordering::Less => {
                            a.next();
                        }
                        std::cmp::Ordering::Greater => {
                            b.next();
                        }
                        std::cmp::Ordering::Equal => {
                            if let Obj::Value(_) = oa {
                                let n = oa.node();
                                if self.try_bind(step_idx, slot, n, n) {
                                    return true;
                                }
                            }
                            a.next();
                            b.next();
                        }
                    }
                }
                false
            }
            _ => {
                // Entity-kind slot: pair every p-successor entity of s1 with
                // every p-successor entity of s2 (feasibility prunes).
                let a = self.g.out_with(s1, p);
                let b = self.g.out_with(s2, p);
                for &(_, oa) in a {
                    let Obj::Entity(_) = oa else { continue };
                    for &(_, ob) in b {
                        let Obj::Entity(_) = ob else { continue };
                        if self.try_bind(step_idx, slot, oa.node(), ob.node()) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    fn expand_backward(
        &mut self,
        step_idx: usize,
        slot: u16,
        p: PredId,
        o1: NodeId,
        o2: NodeId,
    ) -> bool {
        // Subjects are always entities.
        let a = self.g.in_with(o1, p);
        let b = self.g.in_with(o2, p);
        for &(_, sa) in a {
            for &(_, sb) in b {
                if self.try_bind(step_idx, slot, NodeId::entity(sa), NodeId::entity(sb)) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairpattern::{IdentityEq, PTriple};
    use gk_graph::Graph;
    use gk_graph::{parse_graph, GraphBuilder};

    fn pt(s: u16, p: PredId, o: u16) -> PTriple {
        PTriple { s, p, o }
    }

    /// The paper's G1 (Fig. 2): two "Anthology 2" albums by The Beatles /
    /// John Farnham plus a third by another artist.
    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Anthology 2"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    /// Q2(x): album identified by name and release year (value-based).
    fn q2(g: &Graph) -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("album").unwrap()),
                SlotKind::ValueVar,
                SlotKind::ValueVar,
            ],
            vec![
                pt(0, g.pred("name_of").unwrap(), 1),
                pt(0, g.pred("release_year").unwrap(), 2),
            ],
            0,
        )
        .unwrap()
    }

    /// Q3(x): artist identified by name and a recorded album (recursive).
    fn q3(g: &Graph) -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("artist").unwrap()),
                SlotKind::ValueVar,
                SlotKind::EqEntity(g.etype("album").unwrap()),
            ],
            vec![
                pt(0, g.pred("name_of").unwrap(), 1),
                pt(2, g.pred("recorded_by").unwrap(), 0),
            ],
            0,
        )
        .unwrap()
    }

    fn e(g: &Graph, n: &str) -> EntityId {
        g.entity_named(n).unwrap()
    }

    #[test]
    fn value_based_key_identifies_albums() {
        let g = g1();
        let q = q2(&g);
        assert!(eval_pair(
            &g,
            &q,
            e(&g, "alb1"),
            e(&g, "alb2"),
            &IdentityEq,
            MatchScope::whole_graph()
        ));
        // alb3 has no release year: cannot match Q2 at all.
        assert!(!eval_pair(
            &g,
            &q,
            e(&g, "alb1"),
            e(&g, "alb3"),
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn anchor_degree_precheck_rejects_sparse_entities() {
        // A "bare" album with a single edge can never satisfy Q2's demand
        // for two distinct attribute edges: the anchor degree pre-check
        // rejects the pair without running any search.
        let g = parse_graph(
            r#"
            alb1:album name_of "Anthology 2"
            alb1:album release_year "1996"
            bare:album name_of "Anthology 2"
            "#,
        )
        .unwrap();
        let q = q2(&g);
        assert_eq!(
            q.anchor_req(),
            gk_graph::DegreeReq {
                out: 2,
                inc: 0,
                loops: 0
            }
        );
        assert!(eval_pair_witness(
            &g,
            &q,
            e(&g, "alb1"),
            e(&g, "bare"),
            &IdentityEq,
            MatchScope::whole_graph()
        )
        .is_none());
    }

    #[test]
    fn wildcard_slot_degree_check_preserves_matches() {
        // y must carry two distinct out-edges (p to the anchor's value and
        // q to a second value); hub does, twig does not.
        let g = parse_graph(
            r#"
            a1:t p  v1:t
            a2:t p  v2:t
            v1:t q "one"
            v1:t r "two"
            v2:t q "one"
            v2:t r "two"
            "#,
        )
        .unwrap();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("t").unwrap()),
                SlotKind::Wildcard(g.etype("t").unwrap()),
                SlotKind::ValueVar,
                SlotKind::ValueVar,
            ],
            vec![
                pt(0, g.pred("p").unwrap(), 1),
                pt(1, g.pred("q").unwrap(), 2),
                pt(1, g.pred("r").unwrap(), 3),
            ],
            0,
        )
        .unwrap();
        assert_eq!(q.slot_req(1).out, 2);
        assert!(eval_pair(
            &g,
            &q,
            e(&g, "a1"),
            e(&g, "a2"),
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn recursive_key_waits_for_eq() {
        let g = g1();
        let q = q3(&g);
        // Initially alb1 and alb2 are distinct, so Q3 cannot fire.
        assert!(!eval_pair(
            &g,
            &q,
            e(&g, "art1"),
            e(&g, "art2"),
            &IdentityEq,
            MatchScope::whole_graph()
        ));

        // Once the albums are identified, Q3 identifies the artists
        // (Example 7 / Example 9 of the paper).
        struct AlbEq(EntityId, EntityId);
        impl EqOracle for AlbEq {
            fn same(&self, a: EntityId, b: EntityId) -> bool {
                a == b || (a, b) == (self.0, self.1) || (b, a) == (self.0, self.1)
            }
        }
        let oracle = AlbEq(e(&g, "alb1"), e(&g, "alb2"));
        assert!(eval_pair(
            &g,
            &q,
            e(&g, "art1"),
            e(&g, "art2"),
            &oracle,
            MatchScope::whole_graph()
        ));
        // art3 has a different name: never identified.
        assert!(!eval_pair(
            &g,
            &q,
            e(&g, "art1"),
            e(&g, "art3"),
            &oracle,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn witness_is_fully_instantiated_and_consistent() {
        let g = g1();
        let q = q2(&g);
        let w = eval_pair_witness(
            &g,
            &q,
            e(&g, "alb1"),
            e(&g, "alb2"),
            &IdentityEq,
            MatchScope::whole_graph(),
        )
        .unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(
            w[0],
            (NodeId::entity(e(&g, "alb1")), NodeId::entity(e(&g, "alb2")))
        );
        // Value slots carry the same node on both sides.
        assert_eq!(w[1].0, w[1].1);
        assert_eq!(w[2].0, w[2].1);
    }

    #[test]
    fn stats_report_search_effort() {
        let g = g1();
        let q = q2(&g);
        // A successful match spends at least one feasible bind per
        // non-anchor slot; a pre-check rejection spends nothing.
        let (w, st) = eval_pair_stats(
            &g,
            &q,
            e(&g, "alb1"),
            e(&g, "alb2"),
            &IdentityEq,
            MatchScope::whole_graph(),
        );
        assert!(w.is_some());
        assert!(st.bind_attempts >= 2);
        assert!(st.bind_attempts >= st.infeasible);
        let g2 = parse_graph(
            r#"
            alb1:album name_of "Anthology 2"
            alb1:album release_year "1996"
            bare:album name_of "Anthology 2"
            "#,
        )
        .unwrap();
        let q2 = q2(&g2);
        let (wb, stb) = eval_pair_stats(
            &g2,
            &q2,
            e(&g2, "alb1"),
            e(&g2, "bare"),
            &IdentityEq,
            MatchScope::whole_graph(),
        );
        assert!(wb.is_none());
        assert_eq!(stb, EvalStats::default(), "anchor degree pre-check");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let g = g1();
        let q = q2(&g);
        assert!(!eval_pair(
            &g,
            &q,
            e(&g, "alb1"),
            e(&g, "art1"),
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn scope_restricts_matching() {
        let g = g1();
        let q = q2(&g);
        let a1 = e(&g, "alb1");
        let a2 = e(&g, "alb2");
        let full1 = gk_graph::d_neighborhood(&g, a1, 1);
        let full2 = gk_graph::d_neighborhood(&g, a2, 1);
        assert!(eval_pair(
            &g,
            &q,
            a1,
            a2,
            &IdentityEq,
            MatchScope::new(&full1, &full2)
        ));
        // Radius-0 scopes exclude the value nodes: no match possible.
        let tiny1 = gk_graph::d_neighborhood(&g, a1, 0);
        let tiny2 = gk_graph::d_neighborhood(&g, a2, 0);
        assert!(!eval_pair(
            &g,
            &q,
            a1,
            a2,
            &IdentityEq,
            MatchScope::new(&tiny1, &tiny2)
        ));
    }

    #[test]
    fn constant_condition_must_hold_on_both_sides() {
        // Q6-like: street identified by zip code, only in the UK.
        let mut b = GraphBuilder::new();
        let s1 = b.entity("s1", "street");
        let s2 = b.entity("s2", "street");
        let s3 = b.entity("s3", "street");
        for s in [s1, s2] {
            b.attr(s, "zip", "EH8 9AB");
            b.attr(s, "nation", "UK");
        }
        b.attr(s3, "zip", "EH8 9AB");
        b.attr(s3, "nation", "US");
        let g = b.freeze();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("street").unwrap()),
                SlotKind::ValueVar,
                SlotKind::Const(g.value("UK").unwrap()),
            ],
            vec![
                pt(0, g.pred("zip").unwrap(), 1),
                pt(0, g.pred("nation").unwrap(), 2),
            ],
            0,
        )
        .unwrap();
        assert!(eval_pair(
            &g,
            &q,
            s1,
            s2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
        assert!(!eval_pair(
            &g,
            &q,
            s1,
            s3,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn injectivity_blocks_reusing_nodes() {
        // Pattern: x -p-> w1:t, x -p-> w2:t demands two *distinct*
        // wildcard entities on each side.
        let mut b = GraphBuilder::new();
        let x1 = b.entity("x1", "s");
        let x2 = b.entity("x2", "s");
        let y = b.entity("y", "t");
        let z = b.entity("z", "t");
        b.link(x1, "p", y);
        b.link(x1, "p", z);
        b.link(x2, "p", y); // x2 has only ONE p-neighbor
        let g = b.freeze();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("s").unwrap()),
                SlotKind::Wildcard(g.etype("t").unwrap()),
                SlotKind::Wildcard(g.etype("t").unwrap()),
            ],
            vec![
                pt(0, g.pred("p").unwrap(), 1),
                pt(0, g.pred("p").unwrap(), 2),
            ],
            0,
        )
        .unwrap();
        assert!(!eval_pair(
            &g,
            &q,
            x1,
            x2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn backward_expansion_through_incoming_edges() {
        // Q4-ish: x identified by an incoming parent_of edge from an
        // EqEntity (here satisfied by the *same* parent on both sides).
        let mut b = GraphBuilder::new();
        let p = b.entity("p", "company");
        let c1 = b.entity("c1", "company");
        let c2 = b.entity("c2", "company");
        b.link(p, "parent_of", c1);
        b.link(p, "parent_of", c2);
        b.attr(c1, "name", "AT&T");
        b.attr(c2, "name", "AT&T");
        let g = b.freeze();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("company").unwrap()),
                SlotKind::ValueVar,
                SlotKind::EqEntity(g.etype("company").unwrap()),
            ],
            vec![
                pt(0, g.pred("name").unwrap(), 1),
                pt(2, g.pred("parent_of").unwrap(), 0),
            ],
            0,
        )
        .unwrap();
        // Same parent p on both sides satisfies the EqEntity slot under Eq0.
        assert!(eval_pair(
            &g,
            &q,
            c1,
            c2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn backward_expansion_through_value_nodes() {
        // Pattern: x -q-> n* ; ~w:t -p-> n* — after binding the value via
        // x, the matcher must walk *backward* from the value node to find
        // the wildcard subject.
        let mut b = GraphBuilder::new();
        let x1 = b.entity("x1", "s");
        let x2 = b.entity("x2", "s");
        let w1 = b.entity("w1", "t");
        let w2 = b.entity("w2", "t");
        b.attr(x1, "q", "shared1");
        b.attr(w1, "p", "shared1");
        b.attr(x2, "q", "shared2");
        b.attr(w2, "p", "shared2");
        // x3 has a q-value nothing p-points at: no match.
        let x3 = b.entity("x3", "s");
        b.attr(x3, "q", "lonely");
        let g = b.freeze();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("s").unwrap()),
                SlotKind::ValueVar,
                SlotKind::Wildcard(g.etype("t").unwrap()),
            ],
            vec![
                pt(0, g.pred("q").unwrap(), 1),
                pt(2, g.pred("p").unwrap(), 1),
            ],
            0,
        )
        .unwrap();
        // x1/x2: values differ ("shared1" vs "shared2") so no match —
        // ValueVar demands the SAME value on both sides.
        assert!(!eval_pair(
            &g,
            &q,
            x1,
            x2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
        // Two entities sharing the q-value DO match through the backward
        // step. Add them:
        let mut b2 = GraphBuilder::new();
        let y1 = b2.entity("y1", "s");
        let y2 = b2.entity("y2", "s");
        let v1 = b2.entity("v1", "t");
        b2.attr(y1, "q", "same");
        b2.attr(y2, "q", "same");
        b2.attr(v1, "p", "same");
        let g2 = b2.freeze();
        let q2 = PairPattern::new(
            vec![
                SlotKind::Anchor(g2.etype("s").unwrap()),
                SlotKind::ValueVar,
                SlotKind::Wildcard(g2.etype("t").unwrap()),
            ],
            vec![
                pt(0, g2.pred("q").unwrap(), 1),
                pt(2, g2.pred("p").unwrap(), 1),
            ],
            0,
        )
        .unwrap();
        // The wildcard maps to (v1, v1)?? No: injectivity applies per side,
        // and v1 can be used on both sides (different sides never clash).
        assert!(eval_pair(
            &g2,
            &q2,
            y1,
            y2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn eq_classes_larger_than_two() {
        // The oracle may hold multi-entity classes; any class member pair
        // satisfies an EqEntity slot.
        struct ClassEq(Vec<EntityId>);
        impl EqOracle for ClassEq {
            fn same(&self, a: EntityId, b: EntityId) -> bool {
                a == b || (self.0.contains(&a) && self.0.contains(&b))
            }
        }
        let mut b = GraphBuilder::new();
        let s1 = b.entity("s1", "s");
        let s2 = b.entity("s2", "s");
        let t1 = b.entity("t1", "t");
        let t2 = b.entity("t2", "t");
        let t3 = b.entity("t3", "t");
        b.attr(s1, "n", "same");
        b.attr(s2, "n", "same");
        b.link(s1, "p", t1);
        b.link(s2, "p", t3);
        let g = b.freeze();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("s").unwrap()),
                SlotKind::ValueVar,
                SlotKind::EqEntity(g.etype("t").unwrap()),
            ],
            vec![
                pt(0, g.pred("n").unwrap(), 1),
                pt(0, g.pred("p").unwrap(), 2),
            ],
            0,
        )
        .unwrap();
        // t1 and t3 identified only transitively through t2's class.
        let oracle = ClassEq(vec![t1, t2, t3]);
        assert!(eval_pair(
            &g,
            &q,
            s1,
            s2,
            &oracle,
            MatchScope::whole_graph()
        ));
        let partial = ClassEq(vec![t1, t2]);
        assert!(!eval_pair(
            &g,
            &q,
            s1,
            s2,
            &partial,
            MatchScope::whole_graph()
        ));
    }

    #[test]
    fn wildcard_allows_distinct_entities() {
        // Same as above but with two distinct parents and a Wildcard slot.
        let mut b = GraphBuilder::new();
        let pa = b.entity("pa", "company");
        let pb = b.entity("pb", "company");
        let c1 = b.entity("c1", "company");
        let c2 = b.entity("c2", "company");
        b.link(pa, "parent_of", c1);
        b.link(pb, "parent_of", c2);
        b.attr(c1, "name", "AT&T");
        b.attr(c2, "name", "AT&T");
        let g = b.freeze();
        let wild = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("company").unwrap()),
                SlotKind::ValueVar,
                SlotKind::Wildcard(g.etype("company").unwrap()),
            ],
            vec![
                pt(0, g.pred("name").unwrap(), 1),
                pt(2, g.pred("parent_of").unwrap(), 0),
            ],
            0,
        )
        .unwrap();
        assert!(eval_pair(
            &g,
            &wild,
            c1,
            c2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));

        let strict = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("company").unwrap()),
                SlotKind::ValueVar,
                SlotKind::EqEntity(g.etype("company").unwrap()),
            ],
            vec![
                pt(0, g.pred("name").unwrap(), 1),
                pt(2, g.pred("parent_of").unwrap(), 0),
            ],
            0,
        )
        .unwrap();
        // EqEntity demands the parents be identified — they are not.
        assert!(!eval_pair(
            &g,
            &strict,
            c1,
            c2,
            &IdentityEq,
            MatchScope::whole_graph()
        ));
    }
}
