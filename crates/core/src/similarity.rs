//! Similarity predicates for value matching — Remark §2.2(1) of the paper:
//! *"the results of this paper remain intact when similarity predicates are
//! used along the same lines as value equality"*.
//!
//! The engines match values by interned id, which keeps value equality
//! O(1). To relax exact equality we therefore *canonicalize*: a
//! [`Normalizer`] maps every value string to a canonical form, and
//! [`normalize_graph`] rebuilds the graph with canonicalized values — after
//! which ordinary id equality **is** the similarity predicate. This is the
//! standard normalize-then-exact-match construction from entity-resolution
//! practice; it preserves every algorithm, proof and optimization
//! unchanged, exactly as the remark requires (the predicate must still be
//! an equivalence to keep the chase Church–Rosser).

use gk_graph::{Graph, GraphBuilder, Obj};

/// Maps value strings to canonical representatives; values with equal
/// canonical forms are treated as equal by the keys.
pub trait Normalizer {
    /// The canonical form of `value`.
    fn canonical(&self, value: &str) -> String;
}

/// Case-insensitive comparison: canonical form is lowercase.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseFold;

impl Normalizer for CaseFold {
    fn canonical(&self, value: &str) -> String {
        value.to_lowercase()
    }
}

/// Aggressive textual normalization: lowercase, keep only alphanumeric
/// characters, collapse the rest. `"The Beatles!"` ≡ `"the beatles"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphaNum;

impl Normalizer for AlphaNum {
    fn canonical(&self, value: &str) -> String {
        let mut out = String::with_capacity(value.len());
        let mut pending_space = false;
        for c in value.chars() {
            if c.is_alphanumeric() {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.extend(c.to_lowercase());
            } else {
                pending_space = true;
            }
        }
        out
    }
}

/// A user-supplied normalization function.
pub struct CustomNormalizer<F: Fn(&str) -> String>(pub F);

impl<F: Fn(&str) -> String> Normalizer for CustomNormalizer<F> {
    fn canonical(&self, value: &str) -> String {
        (self.0)(value)
    }
}

/// Rebuilds `g` with every value replaced by its canonical form. Constants
/// in keys must be written in canonical form (or the key set normalized
/// with [`normalize_keys`]).
pub fn normalize_graph(g: &Graph, n: &impl Normalizer) -> Graph {
    let mut b = GraphBuilder::new();
    // Recreate entities with their labels and types so downstream lookups
    // by name keep working.
    for e in g.entities() {
        let label = g.entity_label(e);
        let ty = g.type_str(g.entity_type(e));
        b.entity(&label, ty);
    }
    for t in g.triples() {
        let s_label = g.entity_label(t.s);
        let s_ty = g.type_str(g.entity_type(t.s));
        let s = b.entity(&s_label, s_ty);
        let p = g.pred_str(t.p);
        match t.o {
            Obj::Entity(o) => {
                let o_label = g.entity_label(o);
                let o_ty = g.type_str(g.entity_type(o));
                let oe = b.entity(&o_label, o_ty);
                b.link(s, p, oe);
            }
            Obj::Value(v) => {
                b.attr(s, p, &n.canonical(g.value_str(v)));
            }
        }
    }
    b.freeze()
}

/// Canonicalizes the constants inside a key set so they compare under the
/// same normalizer as the graph.
pub fn normalize_keys(keys: &crate::KeySet, n: &impl Normalizer) -> crate::KeySet {
    let mapped: Vec<crate::Key> = keys
        .keys()
        .iter()
        .map(|k| {
            let mut k = k.clone();
            for t in &mut k.triples {
                for term in [&mut t.s, &mut t.o] {
                    if let crate::Term::Const { value } = term {
                        *value = n.canonical(value);
                    }
                }
            }
            k
        })
        .collect();
    crate::KeySet::new(mapped).expect("normalization preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chase_reference, ChaseOrder, KeySet};
    use gk_graph::parse_graph;

    #[test]
    fn case_fold_canonical() {
        assert_eq!(CaseFold.canonical("The BEATLES"), "the beatles");
    }

    #[test]
    fn alphanum_strips_punctuation() {
        assert_eq!(AlphaNum.canonical("The Beatles!"), "the beatles");
        assert_eq!(AlphaNum.canonical("  A--T&T Inc. "), "a t t inc");
        assert_eq!(AlphaNum.canonical(""), "");
    }

    #[test]
    fn custom_normalizer() {
        let n = CustomNormalizer(|s: &str| s.chars().rev().collect());
        assert_eq!(n.canonical("abc"), "cba");
    }

    #[test]
    fn similarity_merges_spelling_variants() {
        // Exact match misses the duplicates; AlphaNum similarity finds them.
        let g = parse_graph(
            r#"
            a1:album name_of "Anthology 2"
            a1:album release_year "1996"
            a2:album name_of "ANTHOLOGY 2!"
            a2:album release_year "1996"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse("key \"Q2\" album(x) { x -name_of-> n*; x -release_year-> y*; }")
            .unwrap();

        let exact = chase_reference(&g, &keys.compile(&g), ChaseOrder::Deterministic);
        assert!(exact.identified_pairs().is_empty(), "exact match must miss");

        let ng = normalize_graph(&g, &AlphaNum);
        let fuzzy = chase_reference(&ng, &keys.compile(&ng), ChaseOrder::Deterministic);
        assert_eq!(fuzzy.identified_pairs().len(), 1, "similarity must merge");
    }

    #[test]
    fn normalize_graph_preserves_structure() {
        let g = parse_graph(
            r#"
            a:t p b:t
            a:t q "X Y"
            b:t q "x y"
            "#,
        )
        .unwrap();
        let ng = normalize_graph(&g, &CaseFold);
        assert_eq!(ng.num_entities(), g.num_entities());
        assert_eq!(ng.num_triples(), g.num_triples());
        // The two values collapsed into one canonical node.
        assert_eq!(ng.num_values(), 1);
        assert!(ng.entity_named("a").is_some());
    }

    #[test]
    fn normalize_keys_rewrites_constants() {
        let keys =
            KeySet::parse(r#"key "Q6" street(x) { x -zip-> z*; x -nation-> "U.K."; }"#).unwrap();
        let nk = normalize_keys(&keys, &AlphaNum);
        let text = crate::write_keys(nk.keys());
        assert!(
            text.contains("\"u k\""),
            "constant must be canonicalized: {text}"
        );
    }

    #[test]
    fn constant_keys_work_end_to_end_under_similarity() {
        let g = parse_graph(
            r#"
            s1:street zip "EH8" # Edinburgh
            s1:street nation "U.K."
            s2:street zip "EH8"
            s2:street nation "uk"
            "#,
        )
        .unwrap();
        let keys =
            KeySet::parse(r#"key "Q6" street(x) { x -zip-> z*; x -nation-> "UK"; }"#).unwrap();
        // "U.K." and "uk" both canonicalize to "uk" under a normalizer that
        // strips dots and lowercases.
        let n = CustomNormalizer(|s: &str| {
            s.chars()
                .filter(|c| c.is_alphanumeric())
                .flat_map(char::to_lowercase)
                .collect()
        });
        let ng = normalize_graph(&g, &n);
        let nk = normalize_keys(&keys, &n);
        let r = chase_reference(&ng, &nk.compile(&ng), ChaseOrder::Deterministic);
        assert_eq!(r.identified_pairs().len(), 1);
    }
}
