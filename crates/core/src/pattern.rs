//! Keys as graph patterns — the schema-level representation (§2.2).
//!
//! A [`Key`] is a named graph pattern `Q(x)` over *strings* (type names,
//! predicate names, constant values): it exists independently of any
//! particular graph, exactly like a relational key exists independently of
//! a table's rows. Compiling a key against a [`Graph`](gk_graph::Graph)
//! resolves the names to interned ids and produces the executable
//! [`PairPattern`](gk_isomorph::PairPattern).

use gk_graph::GraphView;
use gk_isomorph::{PTriple, PairPattern, SlotKind};
use rustc_hash::FxHashMap;

/// A term of a pattern triple — the paper's variable taxonomy (§2.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// The designated variable `x` (its type is the key's target type).
    X,
    /// An entity variable `y` of some type — *recursive*: the matched pair
    /// must already be identified.
    EntityVar {
        /// Variable name (same name ⇒ same pattern node).
        name: String,
        /// Required entity type.
        ty: String,
    },
    /// A wildcard `ȳ` of some type — both sides need *an* entity of the
    /// type, not the same one.
    Wildcard {
        /// Variable name (same name ⇒ same pattern node).
        name: String,
        /// Required entity type.
        ty: String,
    },
    /// A value variable `y*` — both sides must carry the same value.
    ValueVar {
        /// Variable name (same name ⇒ same pattern node).
        name: String,
    },
    /// A constant value `d` — both sides must carry exactly this value.
    Const {
        /// The literal value.
        value: String,
    },
}

impl Term {
    /// The designated variable `x`.
    pub fn x() -> Term {
        Term::X
    }

    /// An entity variable `name : ty`.
    pub fn var(name: &str, ty: &str) -> Term {
        Term::EntityVar {
            name: name.into(),
            ty: ty.into(),
        }
    }

    /// A wildcard `~name : ty`.
    pub fn wildcard(name: &str, ty: &str) -> Term {
        Term::Wildcard {
            name: name.into(),
            ty: ty.into(),
        }
    }

    /// A value variable `name*`.
    pub fn val(name: &str) -> Term {
        Term::ValueVar { name: name.into() }
    }

    /// A constant `"value"`.
    pub fn constant(value: &str) -> Term {
        Term::Const {
            value: value.into(),
        }
    }

    /// True iff the term denotes an entity node (legal in subject position).
    pub fn is_entity_kind(&self) -> bool {
        matches!(
            self,
            Term::X | Term::EntityVar { .. } | Term::Wildcard { .. }
        )
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::X => write!(f, "x"),
            Term::EntityVar { name, ty } => write!(f, "{name}:{ty}"),
            Term::Wildcard { name, ty } => write!(f, "~{name}:{ty}"),
            Term::ValueVar { name } => write!(f, "{name}*"),
            Term::Const { value } => write!(f, "{value:?}"),
        }
    }
}

/// One pattern triple `(subject, predicate, object)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyTriple {
    /// Subject term (must be entity-kind).
    pub s: Term,
    /// Predicate name.
    pub p: String,
    /// Object term.
    pub o: Term,
}

/// A key for entities of a target type: a named, validated pattern `Q(x)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Key {
    /// Display name, e.g. `"Q1"`.
    pub name: String,
    /// The type τ of the designated variable — the entities this key
    /// identifies.
    pub target_type: String,
    /// The pattern triples.
    pub triples: Vec<KeyTriple>,
}

/// Validation errors for [`Key`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyError {
    /// The pattern has no triples.
    Empty {
        /// Offending key name.
        key: String,
    },
    /// A triple's subject is a value term.
    ValueSubject {
        /// Offending key name.
        key: String,
        /// Triple index.
        triple: usize,
    },
    /// A variable name is used with two different kinds or types.
    InconsistentVar {
        /// Offending key name.
        key: String,
        /// Variable name.
        var: String,
    },
    /// The pattern is not connected to `x` (§2.1 assumes connectivity).
    Disconnected {
        /// Offending key name.
        key: String,
    },
    /// `x` never occurs in the pattern.
    MissingX {
        /// Offending key name.
        key: String,
    },
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::Empty { key } => write!(f, "key {key}: pattern has no triples"),
            KeyError::ValueSubject { key, triple } => {
                write!(
                    f,
                    "key {key}: triple #{triple} has a value in subject position"
                )
            }
            KeyError::InconsistentVar { key, var } => {
                write!(
                    f,
                    "key {key}: variable {var:?} used with conflicting kind or type"
                )
            }
            KeyError::Disconnected { key } => {
                write!(f, "key {key}: pattern is not connected to x")
            }
            KeyError::MissingX { key } => write!(f, "key {key}: x does not occur"),
        }
    }
}

impl std::error::Error for KeyError {}

impl Key {
    /// Starts a fluent builder for a key named `name` identifying entities
    /// of `target_type`.
    pub fn builder(name: &str, target_type: &str) -> KeyBuilder {
        KeyBuilder {
            key: Key {
                name: name.into(),
                target_type: target_type.into(),
                triples: Vec::new(),
            },
        }
    }

    /// Validates the pattern: non-empty, entity subjects, consistent
    /// variable usage, connected to `x`.
    pub fn validate(&self) -> Result<(), KeyError> {
        if self.triples.is_empty() {
            return Err(KeyError::Empty {
                key: self.name.clone(),
            });
        }
        let mut var_kinds: FxHashMap<&str, &Term> = FxHashMap::default();
        let mut has_x = false;
        for (i, t) in self.triples.iter().enumerate() {
            if !t.s.is_entity_kind() {
                return Err(KeyError::ValueSubject {
                    key: self.name.clone(),
                    triple: i,
                });
            }
            for term in [&t.s, &t.o] {
                match term {
                    Term::X => has_x = true,
                    Term::EntityVar { name, .. }
                    | Term::Wildcard { name, .. }
                    | Term::ValueVar { name } => {
                        if name == "x" {
                            return Err(KeyError::InconsistentVar {
                                key: self.name.clone(),
                                var: name.clone(),
                            });
                        }
                        match var_kinds.entry(name.as_str()) {
                            std::collections::hash_map::Entry::Occupied(prev) => {
                                if *prev.get() != term {
                                    return Err(KeyError::InconsistentVar {
                                        key: self.name.clone(),
                                        var: name.clone(),
                                    });
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(term);
                            }
                        }
                    }
                    Term::Const { .. } => {}
                }
            }
        }
        if !has_x {
            return Err(KeyError::MissingX {
                key: self.name.clone(),
            });
        }
        self.check_connected()
    }

    fn check_connected(&self) -> Result<(), KeyError> {
        let (terms, edges) = self.term_graph();
        let x = terms
            .iter()
            .position(|t| **t == Term::X)
            .expect("x checked");
        let mut seen = vec![false; terms.len()];
        seen[x] = true;
        let mut stack = vec![x];
        while let Some(u) = stack.pop() {
            for &(a, b) in &edges {
                for (from, to) in [(a, b), (b, a)] {
                    if from == u && !seen[to] {
                        seen[to] = true;
                        stack.push(to);
                    }
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(KeyError::Disconnected {
                key: self.name.clone(),
            })
        }
    }

    /// Distinct terms (pattern nodes) and index edges between them.
    /// Same variable name ⇒ same node; same constant value ⇒ same node
    /// (§2.1: "two variables are represented as the same node if they have
    /// the same name ...; similarly for values d").
    fn term_graph(&self) -> (Vec<&Term>, Vec<(usize, usize)>) {
        let mut terms: Vec<&Term> = Vec::new();
        let mut index: FxHashMap<&Term, usize> = FxHashMap::default();
        let mut edges = Vec::new();
        for t in &self.triples {
            let si = *index.entry(&t.s).or_insert_with(|| {
                terms.push(&t.s);
                terms.len() - 1
            });
            let oi = *index.entry(&t.o).or_insert_with(|| {
                terms.push(&t.o);
                terms.len() - 1
            });
            edges.push((si, oi));
        }
        (terms, edges)
    }

    /// The radius `d(Q, x)`: longest undirected distance from `x` to any
    /// pattern node (Table 1). Requires a validated key.
    pub fn radius(&self) -> usize {
        let (terms, edges) = self.term_graph();
        let x = terms
            .iter()
            .position(|t| **t == Term::X)
            .expect("validated");
        let mut dist = vec![usize::MAX; terms.len()];
        dist[x] = 0;
        let mut queue = std::collections::VecDeque::from([x]);
        let mut max = 0;
        while let Some(u) = queue.pop_front() {
            for &(a, b) in &edges {
                for (from, to) in [(a, b), (b, a)] {
                    if from == u && dist[to] == usize::MAX {
                        dist[to] = dist[u] + 1;
                        max = max.max(dist[to]);
                        queue.push_back(to);
                    }
                }
            }
        }
        max
    }

    /// True iff the key is *recursively defined* (§2.2): it contains an
    /// entity variable other than `x`.
    pub fn is_recursive(&self) -> bool {
        self.triples
            .iter()
            .any(|t| matches!(t.s, Term::EntityVar { .. }) || matches!(t.o, Term::EntityVar { .. }))
    }

    /// Types of the entity variables in this key — the types this key's
    /// firing may *depend on* (drives the dependency analysis and chain
    /// length `c`).
    pub fn dependency_types(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .triples
            .iter()
            .flat_map(|t| [&t.s, &t.o])
            .filter_map(|term| match term {
                Term::EntityVar { ty, .. } => Some(ty.as_str()),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of pattern triples, `|Q|`.
    pub fn size(&self) -> usize {
        self.triples.len()
    }

    /// Compiles this key against a graph, resolving names to interned ids.
    ///
    /// Returns `None` if some predicate, type or constant does not occur in
    /// the graph at all — such a key can never match there (an *inactive*
    /// key, not an error: keys are schema-level artifacts).
    pub fn compile<V: GraphView>(&self, g: &V) -> Option<PairPattern> {
        let (terms, _) = self.term_graph();
        let target = g.etype(&self.target_type)?;
        let mut slots = Vec::with_capacity(terms.len());
        for t in &terms {
            let kind = match t {
                Term::X => SlotKind::Anchor(target),
                Term::EntityVar { ty, .. } => SlotKind::EqEntity(g.etype(ty)?),
                Term::Wildcard { ty, .. } => SlotKind::Wildcard(g.etype(ty)?),
                Term::ValueVar { .. } => SlotKind::ValueVar,
                Term::Const { value } => SlotKind::Const(g.value(value)?),
            };
            slots.push(kind);
        }
        let slot_of = |needle: &Term| -> u16 {
            terms
                .iter()
                .position(|t| *t == needle)
                .expect("term indexed") as u16
        };
        let mut triples = Vec::with_capacity(self.triples.len());
        for t in &self.triples {
            triples.push(PTriple {
                s: slot_of(&t.s),
                p: g.pred(&t.p)?,
                o: slot_of(&t.o),
            });
        }
        let anchor = slot_of(&Term::X);
        // Structural validity was already established by `validate`; the
        // compile target shares the same structure.
        PairPattern::new(slots, triples, anchor).ok()
    }
}

impl Key {
    /// The `key "Q" t(x) {` opener shared by both DSL renderings.
    fn dsl_header(&self) -> String {
        format!("key {:?} {}(x) {{", self.name, self.target_type)
    }

    /// One `s -p-> o;` pattern triple, shared by both DSL renderings.
    fn dsl_triple(t: &KeyTriple) -> String {
        format!("{} -{}-> {};", t.s, t.p, t.o)
    }

    /// Renders the key as a single DSL line (`key "Q" t(x) { … }`) — the
    /// form the server's `KEYS` listing and `ADDKEY` echo use, still
    /// accepted verbatim by [`parse_keys`](crate::parse_keys).
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.dsl_header();
        for t in &self.triples {
            let _ = write!(out, " {}", Self::dsl_triple(t));
        }
        out.push_str(" }");
        out
    }
}

impl std::fmt::Display for Key {
    /// Renders the key in the (multi-line) DSL syntax accepted by
    /// [`parse_keys`](crate::parse_keys).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.dsl_header())?;
        for t in &self.triples {
            writeln!(f, "    {}", Self::dsl_triple(t))?;
        }
        write!(f, "}}")
    }
}

/// Fluent construction of [`Key`]s; validates on [`build`](KeyBuilder::build).
///
/// ```
/// use gk_core::{Key, Term};
///
/// let q1 = Key::builder("Q1", "album")
///     .triple(Term::x(), "name_of", Term::val("n"))
///     .triple(Term::x(), "recorded_by", Term::var("a", "artist"))
///     .build()
///     .unwrap();
/// assert!(q1.is_recursive());
/// assert_eq!(q1.radius(), 1);
/// ```
pub struct KeyBuilder {
    key: Key,
}

impl KeyBuilder {
    /// Adds the triple `(s, p, o)`.
    pub fn triple(mut self, s: Term, p: &str, o: Term) -> Self {
        self.key.triples.push(KeyTriple { s, p: p.into(), o });
        self
    }

    /// Shorthand: `x -p-> name*`.
    pub fn value(self, p: &str, name: &str) -> Self {
        self.triple(Term::x(), p, Term::val(name))
    }

    /// Shorthand: `x -p-> "value"`.
    pub fn constant(self, p: &str, value: &str) -> Self {
        self.triple(Term::x(), p, Term::constant(value))
    }

    /// Shorthand: `x -p-> name:ty` (entity variable).
    pub fn entity(self, p: &str, name: &str, ty: &str) -> Self {
        self.triple(Term::x(), p, Term::var(name, ty))
    }

    /// Shorthand: `x -p-> ~name:ty` (wildcard).
    pub fn any(self, p: &str, name: &str, ty: &str) -> Self {
        self.triple(Term::x(), p, Term::wildcard(name, ty))
    }

    /// Validates and returns the key.
    pub fn build(self) -> Result<Key, KeyError> {
        self.key.validate()?;
        Ok(self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_graph::parse_graph;

    fn q1() -> Key {
        Key::builder("Q1", "album")
            .value("name_of", "n")
            .entity("recorded_by", "a", "artist")
            .build()
            .unwrap()
    }

    fn q4() -> Key {
        // Company merged from a same-named parent: name + the other parent.
        Key::builder("Q4", "company")
            .triple(Term::x(), "name_of", Term::val("n"))
            .triple(Term::wildcard("p1", "company"), "name_of", Term::val("n"))
            .triple(Term::wildcard("p1", "company"), "parent_of", Term::x())
            .triple(Term::var("p2", "company"), "parent_of", Term::x())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_keys() {
        let k = q1();
        assert_eq!(k.size(), 2);
        assert!(k.is_recursive());
        assert_eq!(k.radius(), 1);
        assert_eq!(k.dependency_types(), vec!["artist"]);
    }

    #[test]
    fn q4_shape() {
        let k = q4();
        assert_eq!(k.size(), 4);
        assert!(k.is_recursive());
        assert_eq!(k.radius(), 1); // every node touches x directly (undirected)
        assert_eq!(k.dependency_types(), vec!["company"]);
    }

    #[test]
    fn value_based_key_is_not_recursive() {
        let q2 = Key::builder("Q2", "album")
            .value("name_of", "n")
            .value("release_year", "y")
            .build()
            .unwrap();
        assert!(!q2.is_recursive());
        assert!(q2.dependency_types().is_empty());
    }

    #[test]
    fn same_constant_is_same_node() {
        let k = Key::builder("K", "t")
            .constant("p", "UK")
            .triple(Term::wildcard("w", "t"), "q", Term::constant("UK"))
            .build()
            .unwrap();
        // x -p-> "UK" <-q- ~w : connected through the shared constant node.
        assert_eq!(k.radius(), 2);
    }

    #[test]
    fn empty_key_rejected() {
        let err = Key::builder("K", "t").build().unwrap_err();
        assert!(matches!(err, KeyError::Empty { .. }));
    }

    #[test]
    fn value_subject_rejected() {
        let err = Key::builder("K", "t")
            .triple(Term::val("v"), "p", Term::x())
            .build()
            .unwrap_err();
        assert!(matches!(err, KeyError::ValueSubject { .. }));
    }

    #[test]
    fn missing_x_rejected() {
        let err = Key::builder("K", "t")
            .triple(Term::wildcard("w", "t"), "p", Term::val("v"))
            .build()
            .unwrap_err();
        assert!(matches!(err, KeyError::MissingX { .. }));
    }

    #[test]
    fn disconnected_rejected() {
        let err = Key::builder("K", "t")
            .value("p", "v")
            .triple(Term::wildcard("w", "u"), "q", Term::val("other"))
            .build()
            .unwrap_err();
        assert!(matches!(err, KeyError::Disconnected { .. }));
    }

    #[test]
    fn inconsistent_var_kind_rejected() {
        let err = Key::builder("K", "t")
            .triple(Term::x(), "p", Term::var("a", "u"))
            .triple(Term::x(), "q", Term::wildcard("a", "u"))
            .build()
            .unwrap_err();
        assert!(matches!(err, KeyError::InconsistentVar { .. }));
    }

    #[test]
    fn inconsistent_var_type_rejected() {
        let err = Key::builder("K", "t")
            .triple(Term::x(), "p", Term::var("a", "u"))
            .triple(Term::x(), "q", Term::var("a", "w"))
            .build()
            .unwrap_err();
        assert!(matches!(err, KeyError::InconsistentVar { .. }));
    }

    #[test]
    fn var_named_x_rejected() {
        let err = Key::builder("K", "t")
            .triple(Term::x(), "p", Term::var("x", "u"))
            .build()
            .unwrap_err();
        assert!(matches!(err, KeyError::InconsistentVar { .. }));
    }

    #[test]
    fn compile_resolves_against_graph() {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album recorded_by r1:artist
            "#,
        )
        .unwrap();
        let q = q1().compile(&g).unwrap();
        assert_eq!(q.size(), 2);
        assert!(q.is_recursive());
        assert_eq!(q.anchor_type(), g.etype("album").unwrap());
    }

    #[test]
    fn compile_fails_on_missing_vocabulary() {
        let g = parse_graph("a1:album name_of \"X\"").unwrap();
        // recorded_by and artist are absent from this graph.
        assert!(q1().compile(&g).is_none());
        // Missing constant.
        let k = Key::builder("K", "album")
            .constant("name_of", "Zed")
            .build()
            .unwrap();
        assert!(k.compile(&g).is_none());
    }

    #[test]
    fn display_roundtrips_structure() {
        let text = q4().to_string();
        assert!(text.contains("key \"Q4\" company(x)"));
        assert!(text.contains("~p1:company -parent_of-> x;"));
    }
}
