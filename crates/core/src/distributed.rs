//! The shard-local half of the distributed chase (§5 deployment shape).
//!
//! A cluster runs N shard processes over *replicas* of the same graph.
//! Each shard owns the slice of candidate pairs whose normalized smaller
//! endpoint hashes to it ([`ShardRole::owns`], via
//! [`gk_graph::entity_shard`]) and chases only that slice to a local
//! fixpoint; the coordinator exchanges the resulting merge logs between
//! shards and re-runs the slice chase seeded with the absorbed external
//! merges until no shard produces a new identification. Church–Rosser
//! (§4.2) makes the interleaving irrelevant: any sequence of key-certified
//! unions under a valid relation reaches the same terminal `Eq`, so the
//! converged cluster answers exactly like a standalone chase.
//!
//! [`chase_shard_slice`] is the whole shard-side contract: seed with
//! everything known so far, advance the owned slice with the same
//! dependency-wake-up discipline as [`crate::chase_parallel`], report only
//! the *new* steps.

use crate::candidates::{candidate_pairs, norm, CandidateMode};
use crate::chase::{ChaseResult, ChaseStep};
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use crate::parallel::failure_dependencies;
use gk_graph::{entity_shard, EntityId, GraphView};
use gk_isomorph::{eval_pair, MatchScope};
use gk_metrics::trace::Span;
use rustc_hash::{FxHashMap, FxHashSet};

/// This process's position in a cluster: shard `shard_id` of `num_shards`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardRole {
    /// This shard's index, in `0..num_shards`.
    pub shard_id: usize,
    /// Total shards in the cluster.
    pub num_shards: usize,
}

impl ShardRole {
    /// Builds a role, validating `shard_id < num_shards` and
    /// `num_shards > 0`.
    pub fn new(shard_id: usize, num_shards: usize) -> Result<ShardRole, String> {
        if num_shards == 0 {
            return Err("num_shards must be positive".into());
        }
        if shard_id >= num_shards {
            return Err(format!(
                "shard_id {shard_id} out of range for {num_shards} shard(s)"
            ));
        }
        Ok(ShardRole {
            shard_id,
            num_shards,
        })
    }

    /// Parses the CLI spelling `I/N` (e.g. `0/4`).
    pub fn parse(s: &str) -> Result<ShardRole, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec {s:?} (want I/N, e.g. 0/4)"))?;
        let shard_id = i
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad shard index {i:?}"))?;
        let num_shards = n
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad shard count {n:?}"))?;
        ShardRole::new(shard_id, num_shards)
    }

    /// Does this shard own the candidate pair `(a, b)`? Ownership follows
    /// the normalized smaller endpoint, so both orders agree and every
    /// pair has exactly one owner.
    #[inline]
    pub fn owns(&self, a: EntityId, b: EntityId) -> bool {
        entity_shard(norm(a, b).0, self.num_shards) == self.shard_id
    }
}

impl std::fmt::Display for ShardRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.shard_id, self.num_shards)
    }
}

/// Chases this shard's slice of the candidate space to a local fixpoint.
///
/// * `seed` — everything identified so far (this shard's previous result
///   plus any external merges absorbed from the coordinator); the slice
///   chase continues from it, never re-deriving a seeded merge.
/// * Returned `eq` is the full relation (seed included); returned `steps`
///   are only the identifications *this call* produced, i.e. the merge
///   log to ship to the coordinator.
///
/// With `num_shards == 1` the slice is the whole candidate set and the
/// terminal `Eq` equals the standalone chase's.
pub fn chase_shard_slice<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    seed: &EqRel,
    role: ShardRole,
    span: &Span,
) -> ChaseResult {
    let enum_span = span.child("enumerate");
    let mut eq = EqRel::identity(g.num_entities());
    eq.absorb(seed.merges());
    let mut open: Vec<(EntityId, EntityId)> = candidate_pairs(g, keys, CandidateMode::Blocked)
        .into_iter()
        .filter(|&(a, b)| role.owns(a, b) && !eq.same(a, b))
        .collect();
    open.sort_unstable();
    enum_span.count("candidates", open.len() as u64);
    enum_span.finish();

    let candidates = open.len();
    let mut wake_ups = 0u64;
    let mut steps: Vec<ChaseStep> = Vec::new();
    let mut rounds = 0usize;
    let mut iso_checks = 0u64;
    // Un-fired dependency pair -> dormant slice pairs waiting on it (the
    // same wake-up discipline as the in-process parallel chase).
    let mut watch: FxHashMap<(EntityId, EntityId), Vec<(EntityId, EntityId)>> =
        FxHashMap::default();
    let mut unfired: Vec<(EntityId, EntityId)> = Vec::new();
    let mut fresh = true;

    while !open.is_empty() {
        rounds += 1;
        let round_span = span.child("round");
        round_span.count("candidates", open.len() as u64);
        let applied_before = steps.len();
        for (a, b) in std::mem::take(&mut open) {
            if eq.same(a, b) {
                continue; // subsumed by closure; drop from future rounds
            }
            let t = g.entity_type(a);
            let mut hit = None;
            for &ki in keys.keys_on(t) {
                iso_checks += 1;
                if eval_pair(
                    g,
                    &keys.keys[ki].pattern,
                    a,
                    b,
                    &eq,
                    MatchScope::whole_graph(),
                ) {
                    hit = Some(ki);
                    break; // one certifying key suffices (§4.1)
                }
            }
            match hit {
                Some(ki) => {
                    eq.union(a, b);
                    steps.push(ChaseStep {
                        pair: norm(a, b),
                        key: ki,
                    });
                }
                None if fresh => {
                    if let Some(deps) = failure_dependencies(g, keys, a, b) {
                        for dep in deps {
                            watch.entry(dep).or_insert_with(|| {
                                unfired.push(dep);
                                Vec::new()
                            });
                            watch.get_mut(&dep).expect("just inserted").push(norm(a, b));
                        }
                    }
                }
                None => {} // woken pair failed again: its other watches remain
            }
        }
        fresh = false;
        round_span.count("merges", (steps.len() - applied_before) as u64);
        if steps.len() == applied_before {
            round_span.finish();
            break; // no certification under the final local Eq: terminal
        }
        let mut woken: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        unfired.retain(|&(a, b)| {
            if eq.same(a, b) {
                if let Some(deps) = watch.remove(&(a, b)) {
                    woken.extend(deps);
                }
                false
            } else {
                true
            }
        });
        open = woken.into_iter().filter(|&(a, b)| !eq.same(a, b)).collect();
        open.sort_unstable(); // deterministic evaluation order
        wake_ups += open.len() as u64;
        round_span.count("wake_ups", open.len() as u64);
        round_span.finish();
    }

    ChaseResult {
        eq,
        steps,
        rounds,
        iso_checks,
        candidates,
        wake_ups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase_reference, ChaseOrder};
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;

    const KEYS: &str = r#"
        key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
        key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
    "#;

    const GRAPH: &str = r#"
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb2:album  recorded_by   art2:artist
        art2:artist name_of       "The Beatles"
        alb3:album  name_of       "Let It Be"
        alb3:album  release_year  "1970"
        alb3:album  recorded_by   art1:artist
    "#;

    #[test]
    fn role_parsing_and_ownership_partition() {
        assert_eq!(
            ShardRole::parse("2/4"),
            Ok(ShardRole {
                shard_id: 2,
                num_shards: 4
            })
        );
        assert!(ShardRole::parse("4/4").is_err());
        assert!(ShardRole::parse("0/0").is_err());
        assert!(ShardRole::parse("x").is_err());
        assert_eq!(ShardRole::parse("1/3").unwrap().to_string(), "1/3");
        // Every pair has exactly one owner, independent of order.
        for a in 0..10u32 {
            for b in 0..10u32 {
                let owners: Vec<usize> = (0..4)
                    .filter(|&i| ShardRole::new(i, 4).unwrap().owns(EntityId(a), EntityId(b)))
                    .collect();
                assert_eq!(owners.len(), 1, "pair ({a}, {b})");
                let flipped = ShardRole::new(owners[0], 4).unwrap();
                assert!(flipped.owns(EntityId(b), EntityId(a)));
            }
        }
    }

    #[test]
    fn single_shard_slice_equals_reference_chase() {
        let g = parse_graph(GRAPH).unwrap();
        let keys = KeySet::parse(KEYS).unwrap().compile(&g);
        let full = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        let role = ShardRole::new(0, 1).unwrap();
        let slice = chase_shard_slice(
            &g,
            &keys,
            &EqRel::identity(g.num_entities()),
            role,
            &Span::disabled(),
        );
        assert_eq!(slice.identified_pairs(), full.identified_pairs());
    }

    #[test]
    fn exchanged_slices_converge_to_the_reference_closure() {
        // Simulate the coordinator loop in-process: each shard chases its
        // slice seeded with the global relation; the global relation
        // absorbs every produced step; repeat until a full sweep is quiet.
        let g = parse_graph(GRAPH).unwrap();
        let keys = KeySet::parse(KEYS).unwrap().compile(&g);
        let full = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        for shards in [1usize, 2, 3, 4] {
            let mut global = EqRel::identity(g.num_entities());
            loop {
                let mut progressed = false;
                for i in 0..shards {
                    let role = ShardRole::new(i, shards).unwrap();
                    let out = chase_shard_slice(&g, &keys, &global, role, &Span::disabled());
                    if global.absorb(out.eq.merges()) > 0 {
                        progressed = true;
                    }
                    // Shipped steps are exactly the new ones.
                    assert!(out.steps.len() <= out.eq.merges().len());
                }
                if !progressed {
                    break;
                }
            }
            assert_eq!(
                global.identified_pairs(),
                full.identified_pairs(),
                "{shards} shard(s)"
            );
        }
    }

    #[test]
    fn seeded_merges_are_not_reported_again() {
        let g = parse_graph(GRAPH).unwrap();
        let keys = KeySet::parse(KEYS).unwrap().compile(&g);
        let role = ShardRole::new(0, 1).unwrap();
        let first = chase_shard_slice(
            &g,
            &keys,
            &EqRel::identity(g.num_entities()),
            role,
            &Span::disabled(),
        );
        assert!(!first.steps.is_empty());
        let again = chase_shard_slice(&g, &keys, &first.eq, role, &Span::disabled());
        assert!(again.steps.is_empty(), "fixpoint is stable");
        assert_eq!(again.eq.identified_pairs(), first.eq.identified_pairs());
    }
}
