//! The product graph `Gp` of the vertex-centric algorithm (§5.1).
//!
//! `Gp`'s vertices are *pairable* node pairs: entity pairs and value pairs
//! drawn from the pairing relations of the candidate set (including the
//! identity pairs `(e, e)` that satisfy recursive slots under `Eq0`), plus
//! the identity nodes of candidate endpoints. Edges come in three flavours:
//!
//! * **topology** — `((s1,s2), p, (o1,o2))` when both `(s1,p,o1)` and
//!   `(s2,p,o2)` are triples of `G`; tour messages travel on these;
//! * **dep** — from a pair to the candidates whose recursive slots it can
//!   satisfy; identification notifications travel on these (§4.2/§5.1);
//! * **tc** — from a candidate pair to the identity nodes of its
//!   endpoints, along which the paper propagates the transitive closure.
//!   We materialize them (they count toward `|Gp|`, reported against the
//!   paper's `|Gp| ≈ 2.7·|G|`), but closure itself is maintained by the
//!   shared union–find, which subsumes the message-based join.

use crate::keyset::CompiledKeySet;
use crate::prep::OptPrep;
use gk_graph::{EntityId, GraphView, NodeId, PredId};
use rustc_hash::FxHashMap;

/// The product graph: oriented node pairs with predicate-labeled topology
/// edges (forward and reverse CSR), dep edges and tc edges.
pub struct ProductGraph {
    /// Vertex table: product node index → (side-1 node, side-2 node).
    pub nodes: Vec<(NodeId, NodeId)>,
    /// Reverse lookup of `nodes`.
    pub index: FxHashMap<(NodeId, NodeId), u32>,
    /// Anchor product node per candidate (aligned with
    /// `OptPrep::candidates`).
    pub anchors: Vec<u32>,
    out_off: Vec<u32>,
    out_edg: Vec<(PredId, u32)>,
    in_off: Vec<u32>,
    in_edg: Vec<(PredId, u32)>,
    /// Dep edges: product node → dependent candidate indices.
    pub dep_out: Vec<Vec<u32>>,
    /// Number of tc edges (candidate anchor → endpoint identity nodes).
    pub tc_edges: usize,
    /// Per-node potential score for prioritized propagation (§5.2):
    /// total topology degree, a proxy for how likely a partially
    /// instantiated message can complete through this node.
    pub potential: Vec<u32>,
}

impl ProductGraph {
    /// Builds `Gp` from the pairing-filtered candidate set.
    pub fn build<V: GraphView>(g: &V, _keys: &CompiledKeySet, prep: &OptPrep) -> ProductGraph {
        // ---- Vertices ---------------------------------------------------
        let mut nodes: Vec<(NodeId, NodeId)> = Vec::new();
        for c in &prep.candidates {
            nodes.extend(c.slot_pairs.iter().copied());
            let (a, b) = c.pair;
            nodes.push((NodeId::entity(a), NodeId::entity(b)));
            // Identity nodes of paired entities (tc targets; also satisfy
            // recursive slots under Eq0).
            nodes.push((NodeId::entity(a), NodeId::entity(a)));
            nodes.push((NodeId::entity(b), NodeId::entity(b)));
        }
        nodes.sort_unstable();
        nodes.dedup();
        let index: FxHashMap<(NodeId, NodeId), u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();

        // ---- Topology edges --------------------------------------------
        // For each entity-pair vertex, pair up same-predicate out-edges of
        // both sides whose object pair is also a vertex.
        let n = nodes.len();
        let mut fwd: Vec<Vec<(PredId, u32)>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<(PredId, u32)>> = vec![Vec::new(); n];
        for (i, &(u1, u2)) in nodes.iter().enumerate() {
            let (Some(e1), Some(e2)) = (u1.as_entity(), u2.as_entity()) else {
                continue; // value pairs have no out-edges
            };
            for &(p, o1) in g.out(e1) {
                for &(q, o2) in g.out_with(e2, p) {
                    debug_assert_eq!(p, q);
                    if let Some(&j) = index.get(&(o1.node(), o2.node())) {
                        fwd[i].push((p, j));
                        rev[j as usize].push((p, i as u32));
                    }
                }
            }
        }
        for l in fwd.iter_mut().chain(rev.iter_mut()) {
            l.sort_unstable();
            l.dedup();
        }
        let potential: Vec<u32> = (0..n)
            .map(|i| (fwd[i].len() + rev[i].len()) as u32)
            .collect();
        let (out_off, out_edg) = to_csr(fwd);
        let (in_off, in_edg) = to_csr(rev);

        // ---- Anchors, dep edges, tc edges -------------------------------
        let anchors: Vec<u32> = prep
            .candidates
            .iter()
            .map(|c| {
                let (a, b) = c.pair;
                index[&(NodeId::entity(a), NodeId::entity(b))]
            })
            .collect();
        let mut dep_out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (&(a, b), dependents) in &prep.dependents {
            for &(x, y) in &[(a, b), (b, a)] {
                if let Some(&i) = index.get(&(NodeId::entity(x), NodeId::entity(y))) {
                    dep_out[i as usize].extend(dependents.iter().map(|&c| c as u32));
                }
            }
        }
        for l in &mut dep_out {
            l.sort_unstable();
            l.dedup();
        }
        let tc_edges = prep
            .candidates
            .iter()
            .map(|c| {
                let (a, b) = c.pair;
                usize::from(index.contains_key(&(NodeId::entity(a), NodeId::entity(a))))
                    + usize::from(index.contains_key(&(NodeId::entity(b), NodeId::entity(b))))
            })
            .sum();

        ProductGraph {
            nodes,
            index,
            anchors,
            out_off,
            out_edg,
            in_off,
            in_edg,
            dep_out,
            tc_edges,
            potential,
        }
    }

    /// Number of product vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|Ep|` (topology + dep + tc) — with `|Vp|`, the
    /// `|Gp|` the paper compares to `2.7·|G|`.
    pub fn num_edges(&self) -> usize {
        self.out_edg.len() + self.dep_out.iter().map(Vec::len).sum::<usize>() + self.tc_edges
    }

    /// `|Gp|` as nodes + edges (the paper measures graphs by triples; we
    /// report both).
    pub fn size(&self) -> usize {
        self.num_nodes() + self.num_edges()
    }

    /// Forward topology edges of product node `v`, sorted by `(p, target)`.
    #[inline]
    pub fn out(&self, v: u32) -> &[(PredId, u32)] {
        let lo = self.out_off[v as usize] as usize;
        let hi = self.out_off[v as usize + 1] as usize;
        &self.out_edg[lo..hi]
    }

    /// Forward topology edges of `v` labeled `p`.
    pub fn out_with(&self, v: u32, p: PredId) -> &[(PredId, u32)] {
        slice_with(self.out(v), p)
    }

    /// Reverse topology edges of `v`, sorted by `(p, source)`.
    #[inline]
    pub fn inc(&self, v: u32) -> &[(PredId, u32)] {
        let lo = self.in_off[v as usize] as usize;
        let hi = self.in_off[v as usize + 1] as usize;
        &self.in_edg[lo..hi]
    }

    /// Reverse topology edges of `v` labeled `p`.
    pub fn in_with(&self, v: u32, p: PredId) -> &[(PredId, u32)] {
        slice_with(self.inc(v), p)
    }

    /// True iff the topology edge `u -p-> v` exists.
    pub fn has_edge(&self, u: u32, p: PredId, v: u32) -> bool {
        self.out(u).binary_search(&(p, v)).is_ok()
    }

    /// The entity pair of a product node, if it is an entity pair.
    pub fn entity_pair(&self, v: u32) -> Option<(EntityId, EntityId)> {
        let (a, b) = self.nodes[v as usize];
        Some((a.as_entity()?, b.as_entity()?))
    }
}

fn to_csr(lists: Vec<Vec<(PredId, u32)>>) -> (Vec<u32>, Vec<(PredId, u32)>) {
    let mut off = Vec::with_capacity(lists.len() + 1);
    off.push(0u32);
    let mut edg = Vec::new();
    for l in lists {
        edg.extend(l);
        off.push(edg.len() as u32);
    }
    (off, edg)
}

fn slice_with(all: &[(PredId, u32)], p: PredId) -> &[(PredId, u32)] {
    let lo = all.partition_point(|&(q, _)| q < p);
    let hi = all.partition_point(|&(q, _)| q <= p);
    &all[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateMode;
    use crate::keyset::KeySet;
    use crate::prep::prepare_opt;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            "#,
        )
        .unwrap()
    }

    fn setup(g: &Graph) -> (CompiledKeySet, OptPrep) {
        let keys = KeySet::parse(
            r#"
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g);
        let prep = prepare_opt(g, &keys, CandidateMode::TypePairs);
        (keys, prep)
    }

    #[test]
    fn anchors_resolve_to_candidate_pairs() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        assert_eq!(gp.anchors.len(), prep.candidates.len());
        for (ci, &v) in gp.anchors.iter().enumerate() {
            let (a, b) = gp.entity_pair(v).unwrap();
            assert_eq!((a, b), prep.candidates[ci].pair);
        }
    }

    #[test]
    fn topology_edges_are_backed_by_graph_triples() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        let mut seen = 0;
        for v in 0..gp.num_nodes() as u32 {
            let (u1, u2) = gp.nodes[v as usize];
            for &(p, w) in gp.out(v) {
                let (o1, o2) = gp.nodes[w as usize];
                let e1 = u1.as_entity().unwrap();
                let e2 = u2.as_entity().unwrap();
                assert!(g.has(e1, p, o1.to_obj()), "side-1 edge missing");
                assert!(g.has(e2, p, o2.to_obj()), "side-2 edge missing");
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn reverse_edges_mirror_forward() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        for v in 0..gp.num_nodes() as u32 {
            for &(p, w) in gp.out(v) {
                assert!(
                    gp.in_with(w, p).iter().any(|&(_, u)| u == v),
                    "missing reverse edge"
                );
            }
        }
    }

    #[test]
    fn value_pairs_present_for_shared_values() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        let anth = g.value("Anthology 2").unwrap();
        let vp = (NodeId::value(anth), NodeId::value(anth));
        assert!(
            gp.index.contains_key(&vp),
            "shared value node missing from Gp"
        );
    }

    #[test]
    fn identity_nodes_present_for_candidate_endpoints() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        let a1 = NodeId::entity(g.entity_named("alb1").unwrap());
        assert!(gp.index.contains_key(&(a1, a1)));
        assert!(gp.tc_edges > 0);
    }

    #[test]
    fn dep_edges_point_at_dependent_candidates() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        // The album anchor should carry a dep edge to the artist candidate.
        let alb_ci = prep
            .candidates
            .iter()
            .position(|c| g.entity_type(c.pair.0) == g.etype("album").unwrap())
            .unwrap();
        let art_ci = 1 - alb_ci;
        let alb_anchor = gp.anchors[alb_ci];
        assert!(gp.dep_out[alb_anchor as usize].contains(&(art_ci as u32)));
    }

    #[test]
    fn gp_size_is_modest_multiple_of_g() {
        // §6: |Gp| ≈ 2.7·|G| on average — sanity-check the same order of
        // magnitude (tiny graphs run larger constants than real data).
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        assert!(gp.size() < 20 * g.num_triples());
    }

    #[test]
    fn edge_lookup() {
        let g = g1();
        let (keys, prep) = setup(&g);
        let gp = ProductGraph::build(&g, &keys, &prep);
        for v in 0..gp.num_nodes() as u32 {
            for &(p, w) in gp.out(v) {
                assert!(gp.has_edge(v, p, w));
            }
        }
        assert!(!gp.has_edge(0, PredId(9999), 0));
    }
}
