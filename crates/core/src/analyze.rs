//! EXPLAIN ANALYZE for a single entity: re-derive the cost structure of
//! the chase around one anchor.
//!
//! Aggregate metrics cannot explain *one* answer: the per-request mix of
//! candidate enumeration, degree pruning, value blocking and guided
//! isomorphism checking varies wildly with key topology. This module
//! replays — under the *terminal* relation, so it never changes any
//! answer — exactly the funnel the chase engines apply around one
//! entity, recording how many same-type partners each key had to
//! consider, how many the degree and value-blocking filters removed,
//! and how much guided-search effort ([`EvalStats`]) the survivors
//! cost. The server's `TRACE SAME|DUPS|REP` verbs attach the result as
//! an `analyze` span.

use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use gk_graph::{DegreeBuckets, EntityId, GraphView};
use gk_isomorph::{eval_pair_stats, EvalStats, MatchScope, SlotKind};
use gk_metrics::trace::Span;

/// The candidate funnel around one entity, summed over the keys on its
/// type. `candidates = pruned + iso_checks`: every considered partner is
/// either filtered before matching or actually iso-checked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntityAnalysis {
    /// Same-type partner pairs considered (per key).
    pub candidates: u64,
    /// Pairs removed by degree pruning or value blocking before any
    /// isomorphism search ran.
    pub pruned: u64,
    /// Guided isomorphism evaluations performed on the survivors.
    pub iso_checks: u64,
    /// Iso checks that certified the pair under the terminal relation.
    pub matched: u64,
    /// Guided-search effort spent across all iso checks.
    pub effort: EvalStats,
}

/// Replays the chase's candidate funnel around `e` under the terminal
/// `eq`, recording one `key` child span per key on `e`'s type (counters:
/// `key` index, `candidates`, `pruned_degree`, `pruned_block`,
/// `iso_checks`, `matched`, `bind_attempts`) and the merged totals as
/// `candidates`/`pruned`/`iso_checks`/`matched` counters on `span`.
///
/// Read-only: evaluation under a terminal relation is idempotent, so
/// this can never disturb served answers (Church–Rosser).
pub fn analyze_entity<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    degrees: &DegreeBuckets,
    eq: &EqRel,
    e: EntityId,
    span: &Span,
) -> EntityAnalysis {
    let t = g.entity_type(e);
    let mut total = EntityAnalysis::default();
    for &ki in keys.keys_on(t) {
        let key_span = span.child("key");
        key_span.count("key", ki as u64 + 1);
        let q = &keys.keys[ki].pattern;
        let req = q.anchor_req();
        let partners = g.entities_of_type(t).len().saturating_sub(1) as u64;
        let mut candidates = partners;
        let mut pruned_degree = 0u64;
        let mut pruned_block = 0u64;
        let mut iso_checks = 0u64;
        let mut matched = 0u64;
        let mut effort = EvalStats::default();
        if !degrees.satisfies(e, req) {
            // The anchor itself cannot carry the pattern: every partner
            // pair dies in the degree filter.
            pruned_degree = partners;
        } else {
            // Value blocking (CandidateMode::Blocked): a value attribute
            // on the anchor admits only partners sharing one of `e`'s
            // values under that predicate.
            let block = q.triples().iter().find(|tri| {
                tri.s == q.anchor()
                    && matches!(
                        q.slots()[tri.o as usize],
                        SlotKind::ValueVar | SlotKind::Const(_)
                    )
            });
            let anchor_values: Vec<_> = block
                .map(|tri| {
                    g.out_with(e, tri.p)
                        .iter()
                        .filter_map(|&(_, o)| o.as_value())
                        .collect()
                })
                .unwrap_or_default();
            for f in g.entities_of_type(t) {
                if f == e {
                    continue;
                }
                if !degrees.satisfies(f, req) {
                    pruned_degree += 1;
                    continue;
                }
                if let Some(tri) = block {
                    let shares = g
                        .out_with(f, tri.p)
                        .iter()
                        .filter_map(|&(_, o)| o.as_value())
                        .any(|v| anchor_values.contains(&v));
                    if !shares {
                        pruned_block += 1;
                        continue;
                    }
                }
                iso_checks += 1;
                let (witness, stats) = eval_pair_stats(g, q, e, f, eq, MatchScope::whole_graph());
                effort.absorb(stats);
                if witness.is_some() {
                    matched += 1;
                }
            }
            candidates = pruned_degree + pruned_block + iso_checks;
        }
        key_span.count("candidates", candidates);
        key_span.count("pruned_degree", pruned_degree);
        key_span.count("pruned_block", pruned_block);
        key_span.count("iso_checks", iso_checks);
        key_span.count("matched", matched);
        key_span.count("bind_attempts", effort.bind_attempts);
        key_span.finish();
        total.candidates += candidates;
        total.pruned += pruned_degree + pruned_block;
        total.iso_checks += iso_checks;
        total.matched += matched;
        total.effort.absorb(effort);
    }
    span.count("candidates", total.candidates);
    span.count("pruned", total.pruned);
    span.count("iso_checks", total.iso_checks);
    span.count("matched", total.matched);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase_reference, ChaseOrder};
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;

    #[test]
    fn funnel_accounts_for_every_candidate() {
        let g = parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb3:album  name_of       "Elsewhere"
            alb3:album  release_year  "1996"
            alb4:album  name_of       "Sparse"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .unwrap()
            .compile(&g);
        let eq = chase_reference(&g, &keys, ChaseOrder::Deterministic).eq;
        let degrees = DegreeBuckets::build(&g);
        let e = g.entity_named("alb1").unwrap();
        let span = Span::root("analyze");
        let a = analyze_entity(&g, &keys, &degrees, &eq, e, &span);
        span.finish();
        assert_eq!(a.candidates, 3, "alb2, alb3, alb4");
        assert_eq!(a.candidates, a.pruned + a.iso_checks);
        // alb4 lacks a release_year (degree), alb3 shares no name (block),
        // alb2 survives to the iso check and matches.
        assert_eq!(a.pruned, 2);
        assert_eq!(a.iso_checks, 1);
        assert_eq!(a.matched, 1);
        assert!(a.effort.bind_attempts >= 1);
        let node = span.to_node().unwrap();
        assert_eq!(node.counter("candidates"), Some(3));
        assert_eq!(node.children.len(), 1, "one key span");
        assert_eq!(node.children[0].counter("pruned_degree"), Some(1));
        assert_eq!(node.children[0].counter("pruned_block"), Some(1));
    }

    #[test]
    fn analysis_is_read_only_under_terminal_eq() {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album release_year "2000"
            a2:album name_of "X"
            a2:album release_year "2000"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .unwrap()
            .compile(&g);
        let r = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        let degrees = DegreeBuckets::build(&g);
        let before = r.eq.classes();
        for e in [g.entity_named("a1").unwrap(), g.entity_named("a2").unwrap()] {
            analyze_entity(&g, &keys, &degrees, &r.eq, e, &Span::disabled());
        }
        assert_eq!(r.eq.classes(), before);
    }
}
