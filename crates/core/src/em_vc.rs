//! `EM_VC` — entity matching in the asynchronous vertex-centric model
//! (§5, Fig. 5), with the optimized `EM_VC^opt` (§5.2).
//!
//! Each product-graph vertex runs `EvalVC`: candidate pairs start *initial
//! messages* for the keys defined on them; a message is a partial
//! instantiation vector that walks the product graph guided by the key's
//! tour `P_Q`, forking a copy per admissible neighbor; a message that
//! returns to its origin fully instantiated certifies the key (Lemma 11),
//! upon which the pair is folded into the shared `Eq`, dependents are
//! notified along `dep` edges, and the closure is extended. Early
//! cancellation drops messages whose origin pair is already identified.
//!
//! `EM_VC^opt` bounds the number of live message copies per (pair, key) to
//! `k` — exhausted expansions push their alternatives on an explicit
//! backtracking stack instead of forking (§5.2 "bounded messages") — and
//! orders expansion targets by a precomputed per-node potential
//! ("prioritized propagation").
//!
//! Differences from the paper, by substrate necessity (see DESIGN.md):
//! the transitive closure is maintained by a shared union–find rather than
//! `tc`-edge message joins (the edges are still built and reported), and
//! early cancellation reads the shared relation instead of messaging the
//! origin vertex.

use crate::candidates::CandidateMode;
use crate::em_mr::MatchOutcome;
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use crate::prep::{prepare_opt, OptPrep};
use crate::product::ProductGraph;
use crate::report::RunReport;
use crate::tour::Tour;
use gk_graph::{EntityId, GraphView, NodeId};
use gk_isomorph::SlotKind;
use gk_vertexcentric::{Ctx, Engine, VertexProgram};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::time::Instant;

/// Which member of the `EM_VC` family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcVariant {
    /// `EM_VC`: unbounded message forking (§5.1).
    Base,
    /// `EM_VC^opt`: at most `k` live copies per (pair, key), with
    /// backtracking and prioritized propagation (§5.2). The paper
    /// evaluates `k = 4`.
    Opt {
        /// The message budget `k ≥ 1`.
        k: u32,
    },
}

impl VcVariant {
    /// Display label matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            VcVariant::Base => "EM_VC",
            VcVariant::Opt { .. } => "EM_VC^opt",
        }
    }
}

/// Runs vertex-centric entity matching with `p` worker threads.
pub fn em_vc<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: VcVariant,
) -> MatchOutcome {
    em_vc_mode(g, keys, p, variant, false)
}

/// Like [`em_vc`] but on the deterministic discrete scheduler:
/// `RunReport::sim_seconds` carries the ideal `p`-worker makespan
/// (for scalability sweeps on small hosts).
pub fn em_vc_sim<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: VcVariant,
) -> MatchOutcome {
    em_vc_mode(g, keys, p, variant, true)
}

fn em_vc_mode<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: VcVariant,
    sim: bool,
) -> MatchOutcome {
    let t0 = Instant::now();
    let prep = prepare_opt(g, keys, CandidateMode::Blocked);
    let t_gp = Instant::now();
    let gp = ProductGraph::build(g, keys, &prep);
    // Gp construction is per-node parallelizable; charge it as ideal work.
    let gp_work = t_gp.elapsed();
    let tours: Vec<Tour> = keys.keys.iter().map(|k| Tour::build(&k.pattern)).collect();

    // Shared chase state: the equivalence relation plus the un-fired
    // dependency watch list (scanned under the same lock as unions so a
    // TC-derived identification can never slip past a watcher).
    let shared = RwLock::new(SharedState {
        eq: EqRel::identity(g.num_entities()),
        watch: prep
            .dependents
            .iter()
            .map(|(&pair, deps)| (pair, deps.iter().map(|&d| d as u32).collect()))
            .collect(),
    });

    // Budget slots for Opt: one counter per (candidate, key position).
    let mut budget_off = Vec::with_capacity(prep.candidates.len() + 1);
    budget_off.push(0usize);
    for c in &prep.candidates {
        budget_off.push(budget_off.last().unwrap() + c.keys.len());
    }
    let budgets: Vec<AtomicI32> = (0..*budget_off.last().unwrap())
        .map(|_| AtomicI32::new(0))
        .collect();

    let anchor_of: FxHashMap<u32, u32> = gp
        .anchors
        .iter()
        .enumerate()
        .map(|(ci, &v)| (v, ci as u32))
        .collect();

    let program = EmVcProgram {
        g,
        keys,
        prep: &prep,
        gp: &gp,
        tours: &tours,
        shared: &shared,
        anchor_of: &anchor_of,
        budget_off: &budget_off,
        budgets: &budgets,
        k: match variant {
            VcVariant::Base => None,
            VcVariant::Opt { k } => Some(k.max(1) as i32),
        },
        feasibility_checks: AtomicU64::new(0),
        confirmations: AtomicU64::new(0),
    };

    let initial: Vec<usize> = prep
        .frontier
        .iter()
        .map(|&ci| gp.anchors[ci] as usize)
        .collect();
    let engine = Engine::new(p);
    let (_, stats) = if sim {
        engine.run_simulated(&program, gp.num_nodes(), &initial)
    } else {
        engine.run(&program, gp.num_nodes(), &initial)
    };

    let feasibility_checks = program.feasibility_checks.load(Ordering::Relaxed);
    let confirmations = program.confirmations.load(Ordering::Relaxed);
    #[allow(clippy::drop_non_drop)] // ends the borrow of `shared` before into_inner
    drop(program);
    let eq = shared.into_inner().eq;
    let mut report = RunReport {
        algorithm: variant.label().to_string(),
        workers: p,
        candidates: prep.candidates.len(),
        identified: eq.num_identified_pairs(),
        merges: eq.merges().len(),
        rounds: 1, // asynchronous: no global rounds
        iso_checks: feasibility_checks,
        messages: stats.messages,
        elapsed: t0.elapsed(),
        sim_seconds: stats.sim_makespan.as_secs_f64()
            + (prep.work + gp_work).as_secs_f64() / p as f64,
        ..Default::default()
    };
    report.push_extra("gp_nodes", gp.num_nodes());
    report.push_extra("gp_edges", gp.num_edges());
    report.push_extra(
        "gp_over_g",
        format!("{:.2}", gp.size() as f64 / g.num_triples().max(1) as f64),
    );
    report.push_extra("confirmations", confirmations);
    MatchOutcome { eq, report }
}

struct SharedState {
    eq: EqRel,
    /// Un-fired dependency pairs → dependent candidate indices.
    watch: Vec<((EntityId, EntityId), Vec<u32>)>,
}

/// A choice point for the Opt variant's backtracking search.
#[derive(Clone, Debug)]
struct Choice {
    /// Tour position whose expansion generated the alternatives.
    pos: u16,
    /// Bindings length to restore when taking an alternative.
    keep: u16,
    /// Remaining untried target product nodes.
    alts: Vec<u32>,
}

/// A tour message: the paper's `m_Q(e1, e2)` vector in flight.
#[derive(Clone, Debug)]
struct TourMsg {
    /// Candidate (origin pair) index.
    cand: u32,
    /// Key position *within the candidate's key list*.
    kpos: u16,
    /// Tour step this message is currently traversing.
    pos: u16,
    /// Partial instantiation: (slot, product node), in binding order.
    bindings: Vec<(u16, u32)>,
    /// Backtracking stack (Opt only; empty for Base and forked copies).
    stack: Vec<Choice>,
}

enum VcMsg {
    Tour(TourMsg),
    /// (Re-)activate the anchor's initial messages (dep notification or
    /// initial frontier).
    Activate,
}

struct EmVcProgram<'a, V> {
    g: &'a V,
    keys: &'a CompiledKeySet,
    prep: &'a OptPrep,
    gp: &'a ProductGraph,
    tours: &'a [Tour],
    shared: &'a RwLock<SharedState>,
    anchor_of: &'a FxHashMap<u32, u32>,
    budget_off: &'a [usize],
    budgets: &'a [AtomicI32],
    /// `Some(k)`: bounded messages + backtracking + prioritization (Opt).
    k: Option<i32>,
    feasibility_checks: AtomicU64,
    confirmations: AtomicU64,
}

impl<V: GraphView> EmVcProgram<'_, V> {
    fn budget(&self, cand: u32, kpos: u16) -> &AtomicI32 {
        &self.budgets[self.budget_off[cand as usize] + kpos as usize]
    }

    /// Tries to reserve one more live copy; Base always succeeds.
    fn try_fork(&self, cand: u32, kpos: u16) -> bool {
        match self.k {
            None => {
                self.budget(cand, kpos).fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(k) => {
                let b = self.budget(cand, kpos);
                let prev = b.fetch_add(1, Ordering::Relaxed);
                if prev >= k {
                    b.fetch_sub(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
        }
    }

    fn release(&self, cand: u32, kpos: u16) {
        self.budget(cand, kpos).fetch_sub(1, Ordering::Relaxed);
    }

    fn key_idx(&self, cand: u32, kpos: u16) -> usize {
        self.prep.candidates[cand as usize].keys[kpos as usize]
    }

    fn cancelled(&self, cand: u32) -> bool {
        let (a, b) = self.prep.candidates[cand as usize].pair;
        self.shared.read().eq.same(a, b)
    }

    /// Spawns the initial messages of every key defined on the candidate
    /// (Fig. 5, (1)): bind the anchor, then advance along the tour.
    fn activate(&self, v: usize, ctx: &mut Ctx<'_, VcMsg>) {
        let Some(&cand) = self.anchor_of.get(&(v as u32)) else {
            return; // activation sent to a non-anchor: stale, ignore
        };
        if self.cancelled(cand) {
            return;
        }
        let nkeys = self.prep.candidates[cand as usize].keys.len();
        for kpos in 0..nkeys as u16 {
            if !self.try_fork(cand, kpos) {
                continue; // budget exhausted: live copies are still searching
            }
            let msg = TourMsg {
                cand,
                kpos,
                pos: 0,
                bindings: vec![(self.anchor_slot(cand, kpos), v as u32)],
                stack: Vec::new(),
            };
            self.advance(v as u32, msg, ctx);
        }
    }

    fn anchor_slot(&self, cand: u32, kpos: u16) -> u16 {
        self.keys.keys[self.key_idx(cand, kpos)].pattern.anchor()
    }

    /// Sends `msg` along tour step `msg.pos` from product node `at`
    /// (Fig. 5, (5) guided propagation).
    fn advance(&self, at: u32, mut msg: TourMsg, ctx: &mut Ctx<'_, VcMsg>) {
        let ki = self.key_idx(msg.cand, msg.kpos);
        let q = &self.keys.keys[ki].pattern;
        let tour = &self.tours[ki];
        let step = tour.steps()[msg.pos as usize];
        let tri = q.triples()[step.triple as usize];
        let to_slot = if step.forward { tri.o } else { tri.s };

        if let Some(&(_, target)) = msg.bindings.iter().find(|&&(s, _)| s == to_slot) {
            // Already instantiated: verify the product edge and send the
            // message "back" to it directly (Fig. 5, (5a)).
            let ok = if step.forward {
                self.gp.has_edge(at, tri.p, target)
            } else {
                self.gp.has_edge(target, tri.p, at)
            };
            if ok {
                ctx.send(target as usize, VcMsg::Tour(msg));
            } else {
                self.fail(msg, ctx);
            }
            return;
        }

        // Unbound: fork a copy to every admissible neighbor (Fig. 5, (5b)).
        let mut targets: Vec<u32> = if step.forward {
            self.gp
                .out_with(at, tri.p)
                .iter()
                .map(|&(_, w)| w)
                .collect()
        } else {
            self.gp.in_with(at, tri.p).iter().map(|&(_, w)| w).collect()
        };
        if targets.is_empty() {
            self.fail(msg, ctx);
            return;
        }
        if self.k.is_some() {
            // Prioritized propagation: most promising target first (§5.2).
            targets.sort_by_key(|&w| std::cmp::Reverse(self.gp.potential[w as usize]));
            let first = targets.remove(0);
            // Fork extra copies while budget allows; the original keeps the
            // remaining alternatives on its stack.
            let mut forked = Vec::new();
            while !targets.is_empty() && self.try_fork(msg.cand, msg.kpos) {
                forked.push(targets.remove(0));
            }
            if !targets.is_empty() {
                msg.stack.push(Choice {
                    pos: msg.pos,
                    keep: msg.bindings.len() as u16,
                    alts: targets,
                });
            }
            for w in forked {
                let copy = TourMsg {
                    cand: msg.cand,
                    kpos: msg.kpos,
                    pos: msg.pos,
                    bindings: msg.bindings.clone(),
                    stack: Vec::new(),
                };
                ctx.send(w as usize, VcMsg::Tour(copy));
            }
            ctx.send(first as usize, VcMsg::Tour(msg));
        } else {
            // Base: unbounded fork — one copy per neighbor.
            let last = targets.pop().expect("nonempty");
            for &w in &targets {
                self.budget(msg.cand, msg.kpos)
                    .fetch_add(1, Ordering::Relaxed);
                let copy = TourMsg {
                    cand: msg.cand,
                    kpos: msg.kpos,
                    pos: msg.pos,
                    bindings: msg.bindings.clone(),
                    stack: Vec::new(),
                };
                ctx.send(w as usize, VcMsg::Tour(copy));
            }
            ctx.send(last as usize, VcMsg::Tour(msg));
        }
    }

    /// Feasibility at arrival (Fig. 5, (4)): slot-kind equality conditions,
    /// injectivity of both sides, with `Flag`/`Eq` for entity variables.
    fn feasible(
        &self,
        q: &gk_isomorph::PairPattern,
        slot: u16,
        v: u32,
        bindings: &[(u16, u32)],
    ) -> bool {
        self.feasibility_checks.fetch_add(1, Ordering::Relaxed);
        let (n1, n2) = self.gp.nodes[v as usize];
        for &(_, b) in bindings {
            let (b1, b2) = self.gp.nodes[b as usize];
            if b1 == n1 || b2 == n2 {
                return false; // injectivity per side
            }
        }
        match q.slots()[slot as usize] {
            SlotKind::Anchor(_) => false, // anchor is bound at activation
            SlotKind::EqEntity(ty) => match (n1.as_entity(), n2.as_entity()) {
                (Some(a), Some(b)) => {
                    self.g.entity_type(a) == ty
                        && self.g.entity_type(b) == ty
                        && self.shared.read().eq.same(a, b)
                }
                _ => false,
            },
            SlotKind::Wildcard(ty) => match (n1.as_entity(), n2.as_entity()) {
                (Some(a), Some(b)) => self.g.entity_type(a) == ty && self.g.entity_type(b) == ty,
                _ => false,
            },
            SlotKind::ValueVar => n1.is_value() && n1 == n2,
            SlotKind::Const(d) => n1 == NodeId::value(d) && n2 == n1,
        }
    }

    /// Dead end: backtrack if possible (Opt), else the message dies.
    fn fail(&self, mut msg: TourMsg, ctx: &mut Ctx<'_, VcMsg>) {
        while let Some(top) = msg.stack.last_mut() {
            if let Some(next) = top.alts.pop() {
                let keep = top.keep as usize;
                let pos = top.pos;
                if top.alts.is_empty() {
                    msg.stack.pop();
                }
                msg.bindings.truncate(keep);
                msg.pos = pos;
                ctx.send(next as usize, VcMsg::Tour(msg));
                return;
            }
            msg.stack.pop();
        }
        self.release(msg.cand, msg.kpos); // message dies
    }

    /// Full instantiation arrived back at the anchor: the key certifies
    /// the pair. Union it, fire dependency watches, notify dependents.
    fn confirm(&self, cand: u32, ctx: &mut Ctx<'_, VcMsg>) {
        let (a, b) = self.prep.candidates[cand as usize].pair;
        let mut fired: Vec<u32> = Vec::new();
        {
            let mut s = self.shared.write();
            if !s.eq.union(a, b) {
                return; // another message confirmed it first
            }
            self.confirmations.fetch_add(1, Ordering::Relaxed);
            // Scan watches under the same lock: unions (and their closure)
            // can fire any watched pair.
            let watch = std::mem::take(&mut s.watch);
            let mut kept = Vec::with_capacity(watch.len());
            for (pair, deps) in watch {
                if s.eq.same(pair.0, pair.1) {
                    fired.extend(deps);
                } else {
                    kept.push((pair, deps));
                }
            }
            s.watch = kept;
        }
        fired.sort_unstable();
        fired.dedup();
        for ci in fired {
            ctx.send(self.gp.anchors[ci as usize] as usize, VcMsg::Activate);
        }
    }
}

impl<V: GraphView> VertexProgram for EmVcProgram<'_, V> {
    type State = ();
    type Msg = VcMsg;

    fn init_state(&self, _v: usize) {}

    fn on_start(&self, v: usize, _state: &mut (), ctx: &mut Ctx<'_, VcMsg>) {
        self.activate(v, ctx);
    }

    fn on_message(&self, v: usize, _state: &mut (), msg: VcMsg, ctx: &mut Ctx<'_, VcMsg>) {
        match msg {
            VcMsg::Activate => self.activate(v, ctx),
            VcMsg::Tour(mut msg) => {
                // Early cancellation (Fig. 5, (2)).
                if self.cancelled(msg.cand) {
                    self.release(msg.cand, msg.kpos);
                    return;
                }
                let ki = self.key_idx(msg.cand, msg.kpos);
                let q = &self.keys.keys[ki].pattern;
                let tour = &self.tours[ki];
                let to_slot = tour.slot_after(q, msg.pos as usize);
                let bound = msg.bindings.iter().any(|&(s, _)| s == to_slot);
                if !bound {
                    if !self.feasible(q, to_slot, v as u32, &msg.bindings) {
                        self.fail(msg, ctx);
                        return;
                    }
                    msg.bindings.push((to_slot, v as u32));
                }
                msg.pos += 1;
                if msg.pos as usize == tour.len() {
                    // Verification (Fig. 5, (3)): back at the origin, fully
                    // instantiated.
                    debug_assert_eq!(v as u32, self.gp.anchors[msg.cand as usize]);
                    self.confirm(msg.cand, ctx);
                    self.release(msg.cand, msg.kpos);
                } else {
                    self.advance(v as u32, msg, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::norm;
    use crate::chase::{chase_reference, ChaseOrder};
    use crate::em_mr::{em_mr, MrVariant};
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Anthology 2"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    fn sigma1(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q1" album(x) { x -name_of-> n*; x -recorded_by-> a:artist; }
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    #[test]
    fn example10_albums_then_artists() {
        let g = g1();
        let keys = sigma1(&g);
        let out = em_vc(&g, &keys, 3, VcVariant::Base);
        let e = |n: &str| g.entity_named(n).unwrap();
        assert_eq!(
            out.identified_pairs(),
            vec![norm(e("alb1"), e("alb2")), norm(e("art1"), e("art2"))]
        );
        assert!(out.report.messages > 0);
    }

    #[test]
    fn both_variants_agree_with_reference() {
        let g = g1();
        let keys = sigma1(&g);
        let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
        for variant in [
            VcVariant::Base,
            VcVariant::Opt { k: 4 },
            VcVariant::Opt { k: 1 },
        ] {
            let out = em_vc(&g, &keys, 4, variant);
            assert_eq!(out.identified_pairs(), expected, "variant {variant:?}");
        }
    }

    #[test]
    fn result_independent_of_worker_count() {
        let g = g1();
        let keys = sigma1(&g);
        let expected = em_vc(&g, &keys, 1, VcVariant::Base).identified_pairs();
        for p in [2, 4, 8] {
            for variant in [VcVariant::Base, VcVariant::Opt { k: 4 }] {
                assert_eq!(
                    em_vc(&g, &keys, p, variant).identified_pairs(),
                    expected,
                    "p={p} {variant:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_mapreduce() {
        let g = g1();
        let keys = sigma1(&g);
        let mr = em_mr(&g, &keys, 2, MrVariant::Base).identified_pairs();
        let vc = em_vc(&g, &keys, 2, VcVariant::Base).identified_pairs();
        assert_eq!(mr, vc);
    }

    #[test]
    fn bounded_messages_send_fewer() {
        let g = g1();
        let keys = sigma1(&g);
        let base = em_vc(&g, &keys, 2, VcVariant::Base);
        let opt = em_vc(&g, &keys, 2, VcVariant::Opt { k: 1 });
        assert_eq!(base.identified_pairs(), opt.identified_pairs());
        assert!(
            opt.report.messages <= base.report.messages,
            "bounded {} > unbounded {}",
            opt.report.messages,
            base.report.messages
        );
    }

    #[test]
    fn companies_with_wildcards_and_dependencies() {
        let g = parse_graph(
            r#"
            com0:company name_of   "AT&T"
            com1:company name_of   "AT&T"
            com2:company name_of   "AT&T"
            com3:company name_of   "SBC"
            com4:company name_of   "AT&T"
            com5:company name_of   "AT&T"
            com0:company parent_of com1:company
            com0:company parent_of com2:company
            com0:company parent_of com3:company
            com1:company parent_of com4:company
            com2:company parent_of com5:company
            com3:company parent_of com4:company
            com3:company parent_of com5:company
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(
            r#"
            key "Q4" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                q:company -parent_of-> x;
            }
            key "Q5" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                ~p:company -parent_of-> d:company;
            }
            "#,
        )
        .unwrap()
        .compile(&g);
        let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
        assert_eq!(expected.len(), 2);
        for variant in [VcVariant::Base, VcVariant::Opt { k: 4 }] {
            assert_eq!(em_vc(&g, &keys, 4, variant).identified_pairs(), expected);
        }
    }

    #[test]
    fn transitive_closure_via_shared_eq() {
        let g = parse_graph(
            r#"
            a1:album name_of "N"
            a1:album release_year "2000"
            a2:album name_of "N"
            a2:album release_year "2000"
            a3:album name_of "N"
            a3:album release_year "2000"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse("key \"Q2\" album(x) { x -name_of-> n*; x -release_year-> y*; }")
            .unwrap()
            .compile(&g);
        let out = em_vc(&g, &keys, 3, VcVariant::Base);
        assert_eq!(out.identified_pairs().len(), 3);
        assert_eq!(out.eq.classes().len(), 1);
    }

    #[test]
    fn empty_keys_no_work() {
        let g = g1();
        let keys = KeySet::parse("").unwrap().compile(&g);
        let out = em_vc(&g, &keys, 2, VcVariant::Base);
        assert!(out.identified_pairs().is_empty());
        assert_eq!(out.report.messages, 0);
    }

    #[test]
    fn gp_metrics_reported() {
        let g = g1();
        let keys = sigma1(&g);
        let out = em_vc(&g, &keys, 2, VcVariant::Base);
        assert!(out.report.extra("gp_nodes").is_some());
        assert!(out.report.extra("gp_over_g").is_some());
    }
}
