//! `EM_MR` — entity matching in MapReduce (§4, Fig. 4), with the `EM^VF2_MR`
//! baseline and the optimized `EM_MR^opt` (§4.2).
//!
//! The driver iterates MapReduce rounds until `Eq` stops growing:
//!
//! * **MapEM** checks each candidate pair against the keys within its
//!   d-neighborhoods, under the `Eq` *snapshot* of the previous round, and
//!   emits identified pairs keyed by both endpoints and unidentified pairs
//!   keyed by one;
//! * **ReduceEM** folds newly identified pairs into the global `Eq`
//!   (a union–find, whose closure subsumes the paper's explicit
//!   transitive-closure joins) and re-emits still-open pairs for the next
//!   round.
//!
//! `EM_MR^opt` adds the three optimizations of §4.2: the candidate list is
//! pairing-filtered, matching runs inside *reduced* neighborhoods, and
//! rounds are driven by the entity-dependency frontier — a pair is only
//! (re)checked when it first becomes eligible or when a pair it depends on
//! was just identified (incremental checking).

use crate::candidates::CandidateMode;
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use crate::prep::{prepare_base, prepare_opt, NeighborhoodCache, OptPrep};
use crate::report::RunReport;
use gk_graph::{EntityId, GraphView};
use gk_isomorph::{eval_pair, eval_pair_enumerate, MatchScope};
use gk_mapreduce::{Cluster, Emitter, JobStats, MapReduce};
use parking_lot::Mutex;
use rustc_hash::FxHashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which member of the `EM_MR` family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MrVariant {
    /// `EM^VF2_MR`: enumerate all matches per side (no early termination),
    /// then cross-check coincidence — the baseline of §6.
    Vf2,
    /// `EM_MR`: the fused, early-terminating `EvalMR` matcher (§4.1).
    Base,
    /// `EM_MR^opt`: pairing filter + reduced neighborhoods +
    /// entity-dependency frontier + incremental checking (§4.2).
    Opt,
}

impl MrVariant {
    /// Display label matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            MrVariant::Vf2 => "EM_MR^VF2",
            MrVariant::Base => "EM_MR",
            MrVariant::Opt => "EM_MR^opt",
        }
    }
}

/// Outcome of a parallel entity-matching run.
#[derive(Debug)]
pub struct MatchOutcome {
    /// The computed equivalence relation — `chase(G, Σ)`.
    pub eq: EqRel,
    /// Run metrics.
    pub report: RunReport,
}

impl MatchOutcome {
    /// All identified pairs (the closure), normalized and sorted.
    pub fn identified_pairs(&self) -> Vec<(EntityId, EntityId)> {
        self.eq.identified_pairs()
    }
}

/// Runs entity matching on an in-process MapReduce cluster of `p`
/// worker threads.
pub fn em_mr<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: MrVariant,
) -> MatchOutcome {
    em_mr_mode(g, keys, p, variant, false)
}

/// Like [`em_mr`] but in deterministic simulation mode: tasks run one at a
/// time and `RunReport::sim_seconds` carries the ideal `p`-worker makespan
/// (for scalability sweeps on small hosts).
pub fn em_mr_sim<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: MrVariant,
) -> MatchOutcome {
    em_mr_mode(g, keys, p, variant, true)
}

fn em_mr_mode<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: MrVariant,
    sim: bool,
) -> MatchOutcome {
    match variant {
        MrVariant::Vf2 | MrVariant::Base => em_mr_base(g, keys, p, variant, sim),
        MrVariant::Opt => em_mr_opt(g, keys, p, sim),
    }
}

// ---------------------------------------------------------------------------
// Base / VF2 variants
// ---------------------------------------------------------------------------

struct MapEmBase<'a, V> {
    g: &'a V,
    keys: &'a CompiledKeySet,
    hoods: &'a NeighborhoodCache,
    snapshot: &'a EqRel,
    master: &'a Mutex<EqRel>,
    vf2: bool,
    iso_checks: AtomicU64,
}

impl<V: GraphView> MapEmBase<'_, V> {
    fn check(&self, e1: EntityId, e2: EntityId) -> bool {
        let t = self.g.entity_type(e1);
        let s1 = self.hoods.get(e1);
        let s2 = self.hoods.get(e2);
        for &ki in self.keys.keys_on(t) {
            self.iso_checks.fetch_add(1, Ordering::Relaxed);
            let q = &self.keys.keys[ki].pattern;
            let hit = if self.vf2 {
                eval_pair_enumerate(
                    self.g,
                    q,
                    e1,
                    e2,
                    self.snapshot,
                    Some(s1),
                    Some(s2),
                    usize::MAX,
                )
            } else {
                eval_pair(self.g, q, e1, e2, self.snapshot, MatchScope::new(s1, s2))
            };
            if hit {
                return true; // one certifying key suffices
            }
        }
        false
    }
}

impl<V: GraphView> MapReduce for MapEmBase<'_, V> {
    type KIn = (EntityId, EntityId);
    type VIn = bool;
    type KMid = EntityId;
    type VMid = (EntityId, EntityId, bool);
    type KOut = (EntityId, EntityId);
    type VOut = bool;

    fn map(
        &self,
        &(e1, e2): &Self::KIn,
        &flag: &Self::VIn,
        out: &mut Emitter<Self::KMid, Self::VMid>,
    ) {
        let identified = flag || self.snapshot.same(e1, e2) || self.check(e1, e2);
        if identified {
            // Keyed by both endpoints so each endpoint's reducer learns of
            // it (the paper's TC-join plumbing).
            out.emit(e1, (e1, e2, true));
            out.emit(e2, (e1, e2, true));
        } else {
            out.emit(e1, (e1, e2, false));
        }
    }

    fn reduce(
        &self,
        _e: &Self::KMid,
        values: Vec<Self::VMid>,
        out: &mut Emitter<Self::KOut, Self::VOut>,
    ) {
        // Split into Eq(e) and L(e), fold Eq(e) into the global relation.
        let mut open = Vec::new();
        {
            let mut eq = self.master.lock();
            for (e1, e2, f) in values {
                if f {
                    // The union–find closure subsumes the explicit pairwise
                    // TC joins of ReduceEM lines 6-7.
                    eq.union(e1, e2);
                } else {
                    open.push((e1, e2));
                }
            }
            for (e1, e2) in open {
                if !eq.same(e1, e2) {
                    out.emit((e1, e2), false);
                }
            }
        }
    }
}

fn em_mr_base<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    p: usize,
    variant: MrVariant,
    sim: bool,
) -> MatchOutcome {
    let t0 = Instant::now();
    let prep = prepare_base(g, keys, CandidateMode::TypePairs);
    let cluster = if sim {
        Cluster::simulated(p)
    } else {
        Cluster::new(p)
    };
    let master = Mutex::new(EqRel::identity(g.num_entities()));
    let mut pending: Vec<((EntityId, EntityId), bool)> =
        prep.pairs.iter().map(|&pr| (pr, false)).collect();
    let candidates = pending.len();

    let mut rounds = 0usize;
    let mut iso_checks = 0u64;
    let mut total_stats = JobStats::default();
    loop {
        rounds += 1;
        let snapshot = master.lock().clone();
        let merges_before = snapshot.merges().len();
        let job = MapEmBase {
            g,
            keys,
            hoods: &prep.hoods,
            snapshot: &snapshot,
            master: &master,
            vf2: variant == MrVariant::Vf2,
            iso_checks: AtomicU64::new(0),
        };
        let (out, stats) = cluster.run(&job, pending);
        iso_checks += job.iso_checks.load(Ordering::Relaxed);
        total_stats.accumulate(&stats);
        pending = out;
        let progressed = master.lock().merges().len() > merges_before;
        if !progressed || pending.is_empty() {
            break;
        }
    }

    let eq = master.into_inner();
    let mut report = RunReport {
        algorithm: variant.label().to_string(),
        workers: p,
        candidates,
        identified: eq.num_identified_pairs(),
        merges: eq.merges().len(),
        rounds,
        iso_checks,
        shuffled_records: total_stats.records_shuffled as u64,
        elapsed: t0.elapsed(),
        sim_seconds: total_stats.sim_makespan.as_secs_f64() + prep.work.as_secs_f64() / p as f64,
        ..Default::default()
    };
    report.push_extra("hood_nodes", prep.hoods.total_nodes());
    report.push_extra(
        "straggler_skew",
        format!("{:.2}", total_stats.straggler_skew),
    );
    MatchOutcome { eq, report }
}

// ---------------------------------------------------------------------------
// Optimized variant (§4.2)
// ---------------------------------------------------------------------------

struct MapEmOpt<'a, V> {
    g: &'a V,
    keys: &'a CompiledKeySet,
    prep: &'a OptPrep,
    snapshot: &'a EqRel,
    master: &'a Mutex<EqRel>,
    iso_checks: AtomicU64,
}

impl<V: GraphView> MapEmOpt<'_, V> {
    fn check(&self, e1: EntityId, e2: EntityId) -> bool {
        let ci = self.prep.index[&(e1, e2)];
        let cand = &self.prep.candidates[ci];
        // Reduced scopes + only the keys that pair this candidate (§4.2).
        let scope = MatchScope::new(&cand.scope1, &cand.scope2);
        for &ki in &cand.keys {
            self.iso_checks.fetch_add(1, Ordering::Relaxed);
            if eval_pair(
                self.g,
                &self.keys.keys[ki].pattern,
                e1,
                e2,
                self.snapshot,
                scope,
            ) {
                return true;
            }
        }
        false
    }
}

impl<V: GraphView> MapReduce for MapEmOpt<'_, V> {
    type KIn = (EntityId, EntityId);
    type VIn = bool;
    type KMid = EntityId;
    type VMid = (EntityId, EntityId, bool);
    type KOut = (EntityId, EntityId);
    type VOut = bool;

    fn map(
        &self,
        &(e1, e2): &Self::KIn,
        &flag: &Self::VIn,
        out: &mut Emitter<Self::KMid, Self::VMid>,
    ) {
        let identified = flag || self.snapshot.same(e1, e2) || self.check(e1, e2);
        if identified {
            out.emit(e1, (e1, e2, true));
            out.emit(e2, (e1, e2, true));
        } else {
            out.emit(e1, (e1, e2, false));
        }
    }

    fn reduce(
        &self,
        _e: &Self::KMid,
        values: Vec<Self::VMid>,
        _out: &mut Emitter<Self::KOut, Self::VOut>,
    ) {
        // Incremental checking: unidentified pairs are *not* re-emitted;
        // the driver re-schedules them only when a dependency fires.
        let mut eq = self.master.lock();
        for (e1, e2, f) in values {
            if f {
                eq.union(e1, e2);
            }
        }
    }
}

fn em_mr_opt<V: GraphView>(g: &V, keys: &CompiledKeySet, p: usize, sim: bool) -> MatchOutcome {
    let t0 = Instant::now();
    // Value blocking before pairing: both are sound candidate filters
    // (§4.2 describes pairing; blocking is the standard cheap pre-pass).
    let prep = prepare_opt(g, keys, CandidateMode::Blocked);
    let cluster = if sim {
        Cluster::simulated(p)
    } else {
        Cluster::new(p)
    };
    let master = Mutex::new(EqRel::identity(g.num_entities()));

    // Dependency bookkeeping: dep pairs not yet observed identified.
    let mut unfired: Vec<(EntityId, EntityId)> = prep.dependents.keys().copied().collect();
    unfired.sort_unstable();

    let mut scheduled: FxHashSet<usize> = FxHashSet::default();
    let mut input: Vec<((EntityId, EntityId), bool)> = prep
        .frontier
        .iter()
        .map(|&i| {
            scheduled.insert(i);
            (prep.candidates[i].pair, false)
        })
        .collect();
    let candidates = prep.candidates.len();

    let mut rounds = 0usize;
    let mut iso_checks = 0u64;
    let mut total_stats = JobStats::default();
    while !input.is_empty() {
        rounds += 1;
        let snapshot = master.lock().clone();
        let job = MapEmOpt {
            g,
            keys,
            prep: &prep,
            snapshot: &snapshot,
            master: &master,
            iso_checks: AtomicU64::new(0),
        };
        let (_, stats) = cluster.run(&job, input);
        iso_checks += job.iso_checks.load(Ordering::Relaxed);
        total_stats.accumulate(&stats);

        // Wake dependents of dependencies that became identified (directly
        // or through the transitive closure).
        let eq = master.lock();
        let mut woken: FxHashSet<usize> = FxHashSet::default();
        unfired.retain(|&(a, b)| {
            if eq.same(a, b) {
                if let Some(deps) = prep.dependents.get(&(a, b)) {
                    woken.extend(deps.iter().copied());
                }
                false
            } else {
                true
            }
        });
        input = woken
            .into_iter()
            .filter(|&i| {
                let (a, b) = prep.candidates[i].pair;
                !eq.same(a, b)
            })
            .map(|i| {
                scheduled.insert(i);
                (prep.candidates[i].pair, false)
            })
            .collect();
        input.sort_unstable();
    }

    let eq = master.into_inner();
    let mut report = RunReport {
        algorithm: MrVariant::Opt.label().to_string(),
        workers: p,
        candidates,
        identified: eq.num_identified_pairs(),
        merges: eq.merges().len(),
        rounds,
        iso_checks,
        shuffled_records: total_stats.records_shuffled as u64,
        elapsed: t0.elapsed(),
        sim_seconds: total_stats.sim_makespan.as_secs_f64() + prep.work.as_secs_f64() / p as f64,
        ..Default::default()
    };
    report.push_extra("l_unfiltered", prep.unfiltered);
    report.push_extra("l_filtered", candidates);
    report.push_extra(
        "scope_nodes",
        prep.candidates
            .iter()
            .map(|c| c.scope1.len() + c.scope2.len())
            .sum::<usize>(),
    );
    report.push_extra("checked_pairs", scheduled.len());
    MatchOutcome { eq, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::norm;
    use crate::chase::{chase_reference, ChaseOrder};
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Anthology 2"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    fn sigma1(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q1" album(x) { x -name_of-> n*; x -recorded_by-> a:artist; }
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    #[test]
    fn all_variants_agree_with_reference_on_g1() {
        let g = g1();
        let keys = sigma1(&g);
        let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
        for variant in [MrVariant::Vf2, MrVariant::Base, MrVariant::Opt] {
            let out = em_mr(&g, &keys, 3, variant);
            assert_eq!(
                out.identified_pairs(),
                expected,
                "variant {:?} disagrees",
                variant
            );
        }
    }

    #[test]
    fn result_independent_of_worker_count() {
        let g = g1();
        let keys = sigma1(&g);
        let expected = em_mr(&g, &keys, 1, MrVariant::Base).identified_pairs();
        for p in [2, 4, 8] {
            assert_eq!(
                em_mr(&g, &keys, p, MrVariant::Base).identified_pairs(),
                expected
            );
            assert_eq!(
                em_mr(&g, &keys, p, MrVariant::Opt).identified_pairs(),
                expected
            );
        }
    }

    #[test]
    fn example8_round_structure() {
        // Example 8: round 1 identifies the albums, round 2 the artists,
        // round 3 observes the fixpoint.
        let g = g1();
        let keys = KeySet::parse(
            r#"
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(&g);
        let out = em_mr(&g, &keys, 2, MrVariant::Base);
        assert_eq!(out.report.rounds, 3);
        let e = |n: &str| g.entity_named(n).unwrap();
        assert_eq!(
            out.identified_pairs(),
            vec![norm(e("alb1"), e("alb2")), norm(e("art1"), e("art2"))]
        );
    }

    #[test]
    fn opt_reduces_candidates_and_checks() {
        let g = g1();
        let keys = sigma1(&g);
        let base = em_mr(&g, &keys, 2, MrVariant::Base);
        let opt = em_mr(&g, &keys, 2, MrVariant::Opt);
        assert_eq!(base.identified_pairs(), opt.identified_pairs());
        assert!(opt.report.candidates < base.report.candidates);
        assert!(opt.report.iso_checks <= base.report.iso_checks);
    }

    #[test]
    fn vf2_baseline_does_more_work_than_guided() {
        // Both are correct; the baseline cannot terminate early inside one
        // key evaluation, so it never does fewer checks.
        let g = g1();
        let keys = sigma1(&g);
        let base = em_mr(&g, &keys, 2, MrVariant::Base);
        let vf2 = em_mr(&g, &keys, 2, MrVariant::Vf2);
        assert_eq!(base.identified_pairs(), vf2.identified_pairs());
        assert_eq!(base.report.iso_checks, vf2.report.iso_checks); // same outer loop
    }

    #[test]
    fn empty_keys_identify_nothing() {
        let g = g1();
        let keys = KeySet::parse("").unwrap().compile(&g);
        for v in [MrVariant::Base, MrVariant::Opt] {
            let out = em_mr(&g, &keys, 2, v);
            assert!(out.identified_pairs().is_empty());
        }
    }

    #[test]
    fn transitive_closure_through_mapreduce() {
        // Three duplicate albums: (1,2) and (2,3) both identified by Q2
        // directly; (1,3) must appear in the closure.
        let g = parse_graph(
            r#"
            a1:album name_of "N"
            a1:album release_year "2000"
            a2:album name_of "N"
            a2:album release_year "2000"
            a3:album name_of "N"
            a3:album release_year "2000"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse("key \"Q2\" album(x) { x -name_of-> n*; x -release_year-> y*; }")
            .unwrap()
            .compile(&g);
        for v in [MrVariant::Base, MrVariant::Opt, MrVariant::Vf2] {
            let out = em_mr(&g, &keys, 3, v);
            assert_eq!(out.identified_pairs().len(), 3, "{v:?}");
            assert_eq!(out.eq.classes().len(), 1);
        }
    }
}
