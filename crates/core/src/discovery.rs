//! Basic key discovery — the paper's future-work direction (§7: "develop
//! efficient algorithms for discovering keys"; cf. also the path-based
//! discovery it cites).
//!
//! This module mines **value-based** keys from the data itself with a
//! level-wise (apriori-style) search: for each entity type, find the
//! minimal sets of value attributes whose combined values are unique
//! across the type's entities — exactly the sets `Q(x)` for which
//! `G |= Q(x)` holds. Discovered keys are ordinary [`Key`]s: they can be
//! written to the DSL, compiled, and used for matching on *other* graphs
//! of the same schema.
//!
//! Caveats (inherent to discovery from an instance): a mined key is a key
//! *of this instance*; whether it is a key of the domain is a judgement
//! call. The `min_support` knob guards against vacuous keys that hold only
//! because few entities carry the attributes.

use crate::pattern::{Key, Term};
use gk_graph::{Graph, Obj, PredId, TypeId, ValueId};
use rustc_hash::{FxHashMap, FxHashSet};

/// Configuration for key discovery.
#[derive(Clone, Debug)]
pub struct DiscoveryConfig {
    /// Largest number of attributes combined in one key.
    pub max_attrs: usize,
    /// Minimum fraction of the type's entities that must carry *all*
    /// attributes of a candidate key (guards against vacuous keys).
    pub min_support: f64,
    /// Skip types with fewer entities than this.
    pub min_entities: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_attrs: 3,
            min_support: 0.5,
            min_entities: 2,
        }
    }
}

/// A discovered key with its quality measures.
#[derive(Clone, Debug)]
pub struct DiscoveredKey {
    /// The mined key (value-based, minimal).
    pub key: Key,
    /// Fraction of the type's entities carrying all the key's attributes.
    pub support: f64,
}

/// Mines minimal value-based keys for every entity type of `g`.
pub fn discover_value_keys(g: &Graph, cfg: &DiscoveryConfig) -> Vec<DiscoveredKey> {
    let mut out = Vec::new();
    for t in 0..g.num_types() as u32 {
        let t = TypeId(t);
        discover_for_type(g, t, cfg, &mut out);
    }
    out
}

fn discover_for_type(g: &Graph, t: TypeId, cfg: &DiscoveryConfig, out: &mut Vec<DiscoveredKey>) {
    let ents = g.entities_of_type(t);
    if ents.len() < cfg.min_entities {
        return;
    }
    // Value attributes of this type: predicate -> per-entity first value.
    // (Multi-valued attributes use the full sorted value set as signature:
    // two entities "share" the attribute iff some value coincides would be
    // the matching semantics; for discovery we conservatively require the
    // whole set to differ, which only *under*-claims keys.)
    let mut attr_sigs: FxHashMap<PredId, Vec<(usize, Vec<ValueId>)>> = FxHashMap::default();
    for (i, &e) in ents.iter().enumerate() {
        let mut per_pred: FxHashMap<PredId, Vec<ValueId>> = FxHashMap::default();
        for &(p, o) in g.out(e) {
            if let Obj::Value(v) = o {
                per_pred.entry(p).or_default().push(v);
            }
        }
        for (p, mut vs) in per_pred {
            vs.sort_unstable();
            attr_sigs.entry(p).or_default().push((i, vs));
        }
    }
    let min_count = ((ents.len() as f64) * cfg.min_support).ceil() as usize;
    let mut preds: Vec<PredId> = attr_sigs
        .iter()
        .filter(|(_, sig)| sig.len() >= min_count.max(cfg.min_entities))
        .map(|(&p, _)| p)
        .collect();
    preds.sort_unstable();

    // Level-wise search over attribute sets, pruning supersets of keys.
    let mut found: Vec<Vec<PredId>> = Vec::new();
    let mut frontier: Vec<Vec<PredId>> = preds.iter().map(|&p| vec![p]).collect();
    for _level in 0..cfg.max_attrs {
        let mut next = Vec::new();
        for combo in frontier {
            if found.iter().any(|k| k.iter().all(|p| combo.contains(p))) {
                continue; // superset of a key: not minimal
            }
            match combo_is_key(&attr_sigs, &combo, min_count) {
                ComboStatus::Key { support } => {
                    out.push(DiscoveredKey {
                        key: build_key(g, t, &combo),
                        support,
                    });
                    found.push(combo);
                }
                ComboStatus::NotKey => {
                    // Extend with predicates after the last one (ordered
                    // generation avoids duplicates).
                    let last = *combo.last().expect("non-empty");
                    for &p in preds.iter().filter(|&&p| p > last) {
                        let mut bigger = combo.clone();
                        bigger.push(p);
                        next.push(bigger);
                    }
                }
                ComboStatus::LowSupport => {}
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
}

enum ComboStatus {
    Key { support: f64 },
    NotKey,
    LowSupport,
}

/// Does the attribute combination uniquely identify the entities carrying
/// all of it?
fn combo_is_key(
    attr_sigs: &FxHashMap<PredId, Vec<(usize, Vec<ValueId>)>>,
    combo: &[PredId],
    min_count: usize,
) -> ComboStatus {
    // Entities carrying every predicate of the combo, with their combined
    // signature.
    let mut sigs: FxHashMap<usize, Vec<ValueId>> = FxHashMap::default();
    for (k, &p) in combo.iter().enumerate() {
        let col = &attr_sigs[&p];
        if k == 0 {
            for (e, vs) in col {
                sigs.insert(*e, vs.clone());
            }
        } else {
            let col_map: FxHashMap<usize, &Vec<ValueId>> =
                col.iter().map(|(e, vs)| (*e, vs)).collect();
            sigs.retain(|e, acc| {
                if let Some(vs) = col_map.get(e) {
                    acc.push(ValueId(u32::MAX)); // separator
                    acc.extend_from_slice(vs);
                    true
                } else {
                    false
                }
            });
        }
    }
    let carrier_count = sigs.len();
    if carrier_count < min_count.max(2) {
        return ComboStatus::LowSupport;
    }
    let mut seen: FxHashSet<&[ValueId]> = FxHashSet::default();
    for sig in sigs.values() {
        if !seen.insert(sig.as_slice()) {
            return ComboStatus::NotKey;
        }
    }
    let denom = attr_sigs
        .values()
        .map(Vec::len)
        .max()
        .unwrap_or(1)
        .max(carrier_count);
    ComboStatus::Key {
        support: carrier_count as f64 / denom as f64,
    }
}

fn build_key(g: &Graph, t: TypeId, combo: &[PredId]) -> Key {
    let ty = g.type_str(t);
    let mut b = Key::builder(
        &format!(
            "mined_{}_{}",
            ty,
            combo
                .iter()
                .map(|p| g.pred_str(*p))
                .collect::<Vec<_>>()
                .join("_")
        ),
        ty,
    );
    for (i, &p) in combo.iter().enumerate() {
        b = b.triple(Term::x(), g.pred_str(p), Term::val(&format!("v{i}")));
    }
    b.build().expect("mined keys are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfies::key_violations;
    use crate::KeySet;
    use gk_graph::parse_graph;

    fn catalogue() -> Graph {
        parse_graph(
            r#"
            # name alone is NOT a key; (name, year) is; sku alone is.
            a1:album name "X"
            a1:album year "1996"
            a1:album sku  "S1"
            a2:album name "X"
            a2:album year "1997"
            a2:album sku  "S2"
            a3:album name "Y"
            a3:album year "1996"
            a3:album sku  "S3"
            "#,
        )
        .unwrap()
    }

    #[test]
    fn discovers_single_attribute_key() {
        let g = catalogue();
        let keys = discover_value_keys(&g, &DiscoveryConfig::default());
        let names: Vec<&str> = keys.iter().map(|k| k.key.name.as_str()).collect();
        assert!(names.contains(&"mined_album_sku"), "{names:?}");
    }

    #[test]
    fn discovers_minimal_composite_key() {
        let g = catalogue();
        let keys = discover_value_keys(&g, &DiscoveryConfig::default());
        let names: Vec<&str> = keys.iter().map(|k| k.key.name.as_str()).collect();
        assert!(names.contains(&"mined_album_name_year"), "{names:?}");
        // name alone is not a key; and supersets of sku are pruned.
        assert!(!names.contains(&"mined_album_name"));
        assert!(!names
            .iter()
            .any(|n| n.contains("sku_") || n.ends_with("_sku") && n.matches('_').count() > 2));
    }

    #[test]
    fn mined_keys_hold_on_the_instance() {
        let g = catalogue();
        let mined: Vec<Key> = discover_value_keys(&g, &DiscoveryConfig::default())
            .into_iter()
            .map(|d| d.key)
            .collect();
        let compiled = KeySet::new(mined).unwrap().compile(&g);
        assert!(
            key_violations(&g, &compiled).is_empty(),
            "mined keys must hold"
        );
    }

    #[test]
    fn mined_keys_flag_new_duplicates() {
        // Mine on clean data, then apply to a graph with a duplicate.
        let g = catalogue();
        let mined: Vec<Key> = discover_value_keys(&g, &DiscoveryConfig::default())
            .into_iter()
            .map(|d| d.key)
            .collect();
        let dirty = parse_graph(
            r#"
            a1:album name "X"
            a1:album year "1996"
            a2:album name "X"
            a2:album year "1996"
            "#,
        )
        .unwrap();
        let compiled = KeySet::new(mined).unwrap().compile(&dirty);
        let v = key_violations(&dirty, &compiled);
        assert_eq!(v.len(), 1);
        assert!(v[0].key_name.contains("name_year"));
    }

    #[test]
    fn low_support_combinations_are_skipped() {
        // Only one entity carries "rare": no key mined from it.
        let g = parse_graph(
            r#"
            a:t common "1"
            b:t common "2"
            c:t common "3"
            a:t rare "x"
            "#,
        )
        .unwrap();
        let keys = discover_value_keys(&g, &DiscoveryConfig::default());
        assert!(
            keys.iter().all(|k| !k.key.name.contains("rare")),
            "{keys:?}"
        );
        assert!(keys.iter().any(|k| k.key.name.contains("common")));
    }

    #[test]
    fn multivalued_attributes_are_handled() {
        // Two names each; the full set is the signature.
        let g = parse_graph(
            r#"
            a:t alias "x"
            a:t alias "y"
            b:t alias "x"
            b:t alias "z"
            "#,
        )
        .unwrap();
        let keys = discover_value_keys(&g, &DiscoveryConfig::default());
        // {x,y} vs {x,z} differ: alias is a (conservative) key here.
        assert!(keys.iter().any(|k| k.key.name.contains("alias")));
    }

    #[test]
    fn tiny_types_are_ignored() {
        let g = parse_graph("only:t p \"v\"").unwrap();
        assert!(discover_value_keys(&g, &DiscoveryConfig::default()).is_empty());
    }
}
