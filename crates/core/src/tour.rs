//! Traversal orders `P_Q` — closed tours of a key pattern (§5.1).
//!
//! `EM_VC` propagates a message along a precomputed *tour* of the pattern:
//! a walk that starts and ends at the designated variable and traverses
//! every pattern triple, so that a message arriving back at its origin
//! fully instantiated certifies the key (Lemma 11). Finding a shortest
//! tour is NP-complete (Chinese Postman), so — like the paper — we build
//! one greedily: a depth-first double-traversal visits every triple
//! forward then backward, giving a tour of exactly `2·|Q|` steps, the
//! bound Lemma 11 quotes.

use gk_isomorph::PairPattern;

/// One step of a tour: traverse a pattern triple in one direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TourStep {
    /// Index into the pattern's triples.
    pub triple: u16,
    /// `true`: traverse subject → object; `false`: object → subject.
    pub forward: bool,
}

/// A closed tour of a pattern, starting and ending at the anchor.
#[derive(Clone, Debug)]
pub struct Tour {
    steps: Vec<TourStep>,
}

impl Tour {
    /// Builds the greedy DFS double-traversal tour of `q`.
    pub fn build(q: &PairPattern) -> Tour {
        let n = q.slots().len();
        // Undirected incidence: slot -> (triple idx, is_forward_from_here).
        let mut adj: Vec<Vec<(u16, bool)>> = vec![Vec::new(); n];
        for (i, t) in q.triples().iter().enumerate() {
            adj[t.s as usize].push((i as u16, true));
            if t.s != t.o {
                adj[t.o as usize].push((i as u16, false));
            }
        }
        let mut used = vec![false; q.triples().len()];
        let mut steps = Vec::with_capacity(2 * q.triples().len());
        dfs(q, &adj, &mut used, &mut steps, q.anchor());
        debug_assert!(used.iter().all(|&u| u), "tour must cover all triples");
        Tour { steps }
    }

    /// The steps, in order. A message applies them one per hop.
    pub fn steps(&self) -> &[TourStep] {
        &self.steps
    }

    /// Number of hops, ≤ 2·|Q| (Lemma 11).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the pattern had no triples (cannot happen for valid keys).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The slot the message sits on *after* applying `steps()[i]`,
    /// starting from the anchor.
    pub fn slot_after(&self, q: &PairPattern, i: usize) -> u16 {
        let step = self.steps[i];
        let t = q.triples()[step.triple as usize];
        if step.forward {
            t.o
        } else {
            t.s
        }
    }
}

fn dfs(
    q: &PairPattern,
    adj: &[Vec<(u16, bool)>],
    used: &mut [bool],
    steps: &mut Vec<TourStep>,
    at: u16,
) {
    for &(t, fwd) in &adj[at as usize] {
        if used[t as usize] {
            continue;
        }
        used[t as usize] = true;
        let tri = q.triples()[t as usize];
        let other = if fwd { tri.o } else { tri.s };
        // Walk the edge, explore from the far endpoint, walk back.
        steps.push(TourStep {
            triple: t,
            forward: fwd,
        });
        if other != at {
            dfs(q, adj, used, steps, other);
        }
        steps.push(TourStep {
            triple: t,
            forward: !fwd,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_graph::{PredId, TypeId};
    use gk_isomorph::{PTriple, SlotKind};

    fn pt(s: u16, p: u32, o: u16) -> PTriple {
        PTriple { s, p: PredId(p), o }
    }

    fn star() -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::ValueVar,
                SlotKind::ValueVar,
            ],
            vec![pt(0, 0, 1), pt(0, 1, 2)],
            0,
        )
        .unwrap()
    }

    fn chain() -> PairPattern {
        // x -> w -> v*
        PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::ValueVar,
            ],
            vec![pt(0, 0, 1), pt(1, 1, 2)],
            0,
        )
        .unwrap()
    }

    #[test]
    fn tour_length_is_twice_pattern_size() {
        for q in [star(), chain()] {
            let tour = Tour::build(&q);
            assert_eq!(tour.len(), 2 * q.size());
        }
    }

    #[test]
    fn tour_covers_every_triple_in_both_directions() {
        let q = chain();
        let tour = Tour::build(&q);
        for t in 0..q.size() as u16 {
            let fwd = tour.steps().iter().any(|s| s.triple == t && s.forward);
            let bwd = tour.steps().iter().any(|s| s.triple == t && !s.forward);
            assert!(fwd && bwd, "triple {t} not covered both ways");
        }
    }

    #[test]
    fn tour_is_a_connected_closed_walk_from_anchor() {
        for q in [star(), chain()] {
            let tour = Tour::build(&q);
            let mut at = q.anchor();
            for (i, step) in tour.steps().iter().enumerate() {
                let tri = q.triples()[step.triple as usize];
                let (from, to) = if step.forward {
                    (tri.s, tri.o)
                } else {
                    (tri.o, tri.s)
                };
                assert_eq!(from, at, "step {i} does not start where the walk is");
                assert_eq!(to, tour.slot_after(&q, i));
                at = to;
            }
            assert_eq!(at, q.anchor(), "walk must close at the anchor");
        }
    }

    #[test]
    fn backward_edge_tour() {
        // y -p-> x : the tour's first hop must go backward (object→subject
        // from x's perspective means traversing o→s? No: from x, the
        // incident direction is from the object side).
        let q = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(0)), SlotKind::EqEntity(TypeId(0))],
            vec![pt(1, 0, 0)],
            0,
        )
        .unwrap();
        let tour = Tour::build(&q);
        assert_eq!(tour.len(), 2);
        // First step leaves the anchor through the edge's object side.
        assert_eq!(
            tour.steps()[0],
            TourStep {
                triple: 0,
                forward: false
            }
        );
        assert_eq!(
            tour.steps()[1],
            TourStep {
                triple: 0,
                forward: true
            }
        );
    }

    #[test]
    fn self_loop_tour() {
        let q = PairPattern::new(vec![SlotKind::Anchor(TypeId(0))], vec![pt(0, 0, 0)], 0).unwrap();
        let tour = Tour::build(&q);
        assert_eq!(tour.len(), 2);
        assert_eq!(tour.slot_after(&q, 0), 0);
    }

    #[test]
    fn diamond_tour_covers_cycle() {
        // x -> a -> v* <- b <- x : 4 triples, cycle through the value.
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::ValueVar,
            ],
            vec![pt(0, 0, 1), pt(0, 0, 2), pt(1, 1, 3), pt(2, 1, 3)],
            0,
        )
        .unwrap();
        let tour = Tour::build(&q);
        assert_eq!(tour.len(), 8);
        let mut covered: Vec<u16> = tour.steps().iter().map(|s| s.triple).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, vec![0, 1, 2, 3]);
    }
}
