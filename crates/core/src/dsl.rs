//! A textual DSL for writing keys the way the paper draws them (Fig. 1,
//! Fig. 7).
//!
//! ```text
//! // Q1: an album is identified by its name and its primary artist.
//! key "Q1" album(x) {
//!     x -name_of-> n*;
//!     x -recorded_by-> a:artist;    // entity variable (recursive)
//! }
//!
//! // Q4: a company merged from a same-named parent.
//! key "Q4" company(x) {
//!     x -name_of-> n*;
//!     ~p:company -name_of-> n*;     // wildcard: any company entity
//!     ~p:company -parent_of-> x;
//!     q:company -parent_of-> x;     // entity variable
//! }
//!
//! // Q6: a UK street is identified by its zip code.
//! key "Q6" street(x) {
//!     x -zip_code-> z*;
//!     x -nation_of-> "UK";          // constant condition
//! }
//! ```
//!
//! Terms: `x` (designated variable), `name*` (value variable),
//! `name:Type` (entity variable), `~name:Type` (wildcard), `"literal"`
//! (constant). Comments: `//` or `#` to end of line.

use crate::pattern::{Key, KeyError, KeyTriple, Term};

/// Error from parsing the key DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DslError {}

impl From<KeyError> for DslError {
    fn from(e: KeyError) -> Self {
        DslError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

/// Parses a DSL document into keys (validated).
pub fn parse_keys(text: &str) -> Result<Vec<Key>, DslError> {
    let toks = tokenize(text)?;
    let mut p = Parser { toks, pos: 0 };
    let mut keys = Vec::new();
    let mut anon = 0usize;
    while !p.at_end() {
        keys.push(p.key(&mut anon)?);
    }
    for k in &keys {
        k.validate().map_err(DslError::from)?;
    }
    Ok(keys)
}

/// Renders keys back to DSL text (inverse of [`parse_keys`]).
pub fn write_keys(keys: &[Key]) -> String {
    let mut out = String::new();
    for k in keys {
        out.push_str(&k.to_string());
        out.push_str("\n\n");
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Star,
    Tilde,
    Dash,
    Arrow,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LBrace => write!(f, "'{{'"),
            Tok::RBrace => write!(f, "'}}'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::Colon => write!(f, "':'"),
            Tok::Semi => write!(f, "';'"),
            Tok::Star => write!(f, "'*'"),
            Tok::Tilde => write!(f, "'~'"),
            Tok::Dash => write!(f, "'-'"),
            Tok::Arrow => write!(f, "'->'"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<(Tok, usize)>, DslError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                while chars.peek().is_some_and(|&c| c != '\n') {
                    chars.next();
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while chars.peek().is_some_and(|&c| c != '\n') {
                        chars.next();
                    }
                } else {
                    return Err(DslError {
                        line,
                        msg: "unexpected '/'".into(),
                    });
                }
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                chars.next();
            }
            '(' => {
                toks.push((Tok::LParen, line));
                chars.next();
            }
            ')' => {
                toks.push((Tok::RParen, line));
                chars.next();
            }
            ':' => {
                toks.push((Tok::Colon, line));
                chars.next();
            }
            ';' => {
                toks.push((Tok::Semi, line));
                chars.next();
            }
            '*' => {
                toks.push((Tok::Star, line));
                chars.next();
            }
            '~' => {
                toks.push((Tok::Tilde, line));
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    toks.push((Tok::Arrow, line));
                } else {
                    toks.push((Tok::Dash, line));
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            other => {
                                return Err(DslError {
                                    line,
                                    msg: format!("bad escape \\{other:?}"),
                                })
                            }
                        },
                        '\n' => {
                            return Err(DslError {
                                line,
                                msg: "unterminated string".into(),
                            })
                        }
                        _ => s.push(c),
                    }
                }
                if !closed {
                    return Err(DslError {
                        line,
                        msg: "unterminated string".into(),
                    });
                }
                toks.push((Tok::Str(s), line));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut w = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c.is_alphanumeric() || c == '_')
                {
                    w.push(chars.next().expect("peeked"));
                }
                toks.push((Tok::Ident(w), line));
            }
            other => {
                return Err(DslError {
                    line,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |&(_, l)| l)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok, DslError> {
        let t = self.toks.get(self.pos).cloned().ok_or_else(|| DslError {
            line: self.line(),
            msg: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(t.0)
    }

    fn expect(&mut self, want: Tok) -> Result<(), DslError> {
        let line = self.line();
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(DslError {
                line,
                msg: format!("expected {want}, found {got}"),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DslError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(DslError {
                line,
                msg: format!("expected {what}, found {other}"),
            }),
        }
    }

    fn key(&mut self, anon: &mut usize) -> Result<Key, DslError> {
        let line = self.line();
        let kw = self.ident("keyword 'key'")?;
        if kw != "key" {
            return Err(DslError {
                line,
                msg: format!("expected 'key', found {kw:?}"),
            });
        }
        let name = if let Some(Tok::Str(_)) = self.peek() {
            match self.next()? {
                Tok::Str(s) => s,
                _ => unreachable!("peeked string"),
            }
        } else {
            *anon += 1;
            format!("key#{anon}")
        };
        let target = self.ident("target type")?;
        self.expect(Tok::LParen)?;
        let xline = self.line();
        let x = self.ident("'x'")?;
        if x != "x" {
            return Err(DslError {
                line: xline,
                msg: format!("the designated variable must be named 'x', found {x:?}"),
            });
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut triples = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let s = self.term()?;
            self.expect(Tok::Dash)?;
            let p = self.ident("predicate")?;
            self.expect(Tok::Arrow)?;
            let o = self.term()?;
            self.expect(Tok::Semi)?;
            triples.push(KeyTriple { s, p, o });
        }
        self.expect(Tok::RBrace)?;
        Ok(Key {
            name,
            target_type: target,
            triples,
        })
    }

    fn term(&mut self) -> Result<Term, DslError> {
        let line = self.line();
        match self.next()? {
            Tok::Str(v) => Ok(Term::Const { value: v }),
            Tok::Tilde => {
                let name = self.ident("wildcard name")?;
                self.expect(Tok::Colon)?;
                let ty = self.ident("wildcard type")?;
                Ok(Term::Wildcard { name, ty })
            }
            Tok::Ident(name) => match self.peek() {
                Some(Tok::Star) => {
                    self.next()?;
                    Ok(Term::ValueVar { name })
                }
                Some(Tok::Colon) => {
                    self.next()?;
                    let ty = self.ident("entity-variable type")?;
                    Ok(Term::EntityVar { name, ty })
                }
                _ if name == "x" => Ok(Term::X),
                _ => Err(DslError {
                    line,
                    msg: format!(
                        "bare identifier {name:?}: use 'x', '{name}*', '{name}:Type' or '~{name}:Type'"
                    ),
                }),
            },
            other => Err(DslError { line, msg: format!("expected a term, found {other}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_KEYS: &str = r#"
        // Q1: album identified by name and primary artist.
        key "Q1" album(x) {
            x -name_of-> n*;
            x -recorded_by-> a:artist;
        }

        # Q2: album identified by name and release year.
        key "Q2" album(x) {
            x -name_of-> n*;
            x -release_year-> y*;
        }

        key "Q3" artist(x) {
            x -name_of-> n*;
            a:album -recorded_by-> x;
        }

        key "Q4" company(x) {
            x -name_of-> n*;
            ~p:company -name_of-> n*;
            ~p:company -parent_of-> x;
            q:company -parent_of-> x;
        }

        key "Q5" company(x) {
            x -name_of-> n*;
            ~p:company -name_of-> n*;
            ~p:company -parent_of-> x;
            ~p:company -parent_of-> d:company;
        }

        key "Q6" street(x) {
            x -zip_code-> z*;
            x -nation_of-> "UK";
        }
    "#;

    #[test]
    fn parses_all_six_paper_keys() {
        let keys = parse_keys(PAPER_KEYS).unwrap();
        assert_eq!(keys.len(), 6);
        let names: Vec<_> = keys.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]);
        // Example 6: Q1, Q3, Q4, Q5 recursive; Q2, Q6 value-based.
        let recursive: Vec<bool> = keys.iter().map(|k| k.is_recursive()).collect();
        assert_eq!(recursive, vec![true, false, true, true, true, false]);
    }

    #[test]
    fn radii_match_paper_shapes() {
        let keys = parse_keys(PAPER_KEYS).unwrap();
        assert_eq!(keys[0].radius(), 1); // Q1: star
        assert_eq!(keys[1].radius(), 1); // Q2: star
        assert_eq!(keys[3].radius(), 1); // Q4: all nodes adjacent to x
    }

    #[test]
    fn anonymous_keys_get_names() {
        let keys = parse_keys("key t(x) { x -p-> v*; } key t(x) { x -q-> w*; }").unwrap();
        assert_eq!(keys[0].name, "key#1");
        assert_eq!(keys[1].name, "key#2");
    }

    #[test]
    fn roundtrip_write_parse() {
        let keys = parse_keys(PAPER_KEYS).unwrap();
        let text = write_keys(&keys);
        let again = parse_keys(&text).unwrap();
        assert_eq!(keys, again);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_keys("key t(x) {\n  x -p-> ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_wrong_designated_name() {
        let err = parse_keys("key t(y) { y -p-> v*; }").unwrap_err();
        assert!(err.msg.contains("designated"));
    }

    #[test]
    fn rejects_bare_identifier_term() {
        let err = parse_keys("key t(x) { x -p-> foo; }").unwrap_err();
        assert!(err.msg.contains("bare identifier"));
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = parse_keys("key \"Q t(x) { }").unwrap_err();
        assert!(err.msg.contains("unterminated"));
    }

    #[test]
    fn rejects_invalid_pattern_semantics() {
        // Disconnected pattern -> KeyError surfaced as DslError.
        let err = parse_keys("key t(x) { x -p-> v*; ~w:u -q-> z*; }").unwrap_err();
        assert!(err.msg.contains("not connected"));
    }

    #[test]
    fn comments_both_styles() {
        let keys = parse_keys("// line one\n# line two\nkey t(x) { x -p-> v*; } // tail").unwrap();
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn constants_with_escapes() {
        let keys = parse_keys(r#"key t(x) { x -p-> "a\"b\\c\n"; }"#).unwrap();
        match &keys[0].triples[0].o {
            Term::Const { value } => assert_eq!(value, "a\"b\\c\n"),
            other => panic!("expected const, got {other:?}"),
        }
    }
}
