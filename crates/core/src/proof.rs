//! Proof graphs — checkable certificates for `(G, Σ) |= (e1, e2)`.
//!
//! The NP upper bound of Theorem 2 rests on *proof graphs*: DAG-shaped
//! witnesses with at most `N²` nodes that can be **verified in PTIME**.
//! This module makes that constructive: [`prove`] runs an instrumented
//! chase and emits a [`Proof`] — an ordered list of certified steps, each
//! carrying the key applied and the full witness instantiation — and
//! [`verify`] replays it with no search: every step is checked triple by
//! triple against the graph and the equivalence relation accumulated from
//! the previous steps. A valid proof ends with the target pair identified.
//!
//! Applications: auditable entity resolution (each merge is explainable:
//! *which* key, *which* witnesses), and cheap re-validation after graph
//! updates.

use crate::candidates::norm;
use crate::chase::{chase_reference, ChaseOrder};
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use gk_graph::{EntityId, GraphView, NodeId};
use gk_isomorph::{eval_pair_witness, IdentityEq, MatchScope, SlotKind};

/// One certified chase step.
#[derive(Clone, Debug)]
pub struct ProofStep {
    /// The identified pair (normalized).
    pub pair: (EntityId, EntityId),
    /// Index of the certifying key in the compiled set.
    pub key: usize,
    /// The witness instantiation `m[slot] = (side-1 node, side-2 node)`,
    /// indexed by pattern slot.
    pub witness: Vec<(NodeId, NodeId)>,
}

/// A certificate that the chase identifies [`Proof::target`].
#[derive(Clone, Debug)]
pub struct Proof {
    /// The pair being certified.
    pub target: (EntityId, EntityId),
    /// The steps, in an order where every recursive prerequisite is
    /// established before it is used (a topological order of the paper's
    /// proof DAG).
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Number of steps (≤ the paper's `N²` bound: each step identifies a
    /// fresh pair).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff no steps are needed (never: the target needs at least one).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Why verification rejected a proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// A step references a key index outside the compiled set.
    BadKey {
        /// The offending step index.
        step: usize,
    },
    /// A witness vector does not match the key's slot count.
    BadWitnessShape {
        /// The offending step index.
        step: usize,
    },
    /// A witness violates a slot condition or a pattern edge.
    BadWitness {
        /// The offending step index.
        step: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The steps never identify the target pair.
    TargetNotReached,
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::BadKey { step } => write!(f, "step {step}: unknown key"),
            ProofError::BadWitnessShape { step } => {
                write!(f, "step {step}: witness has wrong arity")
            }
            ProofError::BadWitness { step, reason } => write!(f, "step {step}: {reason}"),
            ProofError::TargetNotReached => write!(f, "steps do not identify the target"),
        }
    }
}

impl std::error::Error for ProofError {}

/// Produces a proof that `(G, Σ) |= (e1, e2)`, or `None` if the chase does
/// not identify the pair.
///
/// The proof contains every chase step up to and including the one whose
/// closure identifies the target — a valid (if not always minimal)
/// certificate; the paper only bounds certificate *size*, which `≤ N²`
/// holds here since each step identifies a fresh pair.
pub fn prove<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    e1: EntityId,
    e2: EntityId,
) -> Option<Proof> {
    let target = norm(e1, e2);
    let r = chase_reference(g, keys, ChaseOrder::Deterministic);
    if !r.eq.same(e1, e2) {
        return None;
    }
    // Replay the recorded steps, harvesting witnesses under the Eq built so
    // far; stop once the target joins the closure.
    let mut eq = EqRel::identity(g.num_entities());
    let mut steps = Vec::new();
    for s in &r.steps {
        let q = &keys.keys[s.key].pattern;
        let witness = eval_pair_witness(g, q, s.pair.0, s.pair.1, &eq, MatchScope::whole_graph())
            .expect("recorded chase step must re-verify");
        eq.union(s.pair.0, s.pair.1);
        steps.push(ProofStep {
            pair: s.pair,
            key: s.key,
            witness,
        });
        if eq.same(e1, e2) {
            break;
        }
    }
    Some(Proof { target, steps })
}

/// Verifies a proof in PTIME: no search, just witness checking.
pub fn verify<V: GraphView>(g: &V, keys: &CompiledKeySet, proof: &Proof) -> Result<(), ProofError> {
    let mut eq = EqRel::identity(g.num_entities());
    for (i, step) in proof.steps.iter().enumerate() {
        let Some(ck) = keys.keys.get(step.key) else {
            return Err(ProofError::BadKey { step: i });
        };
        let q = &ck.pattern;
        if step.witness.len() != q.slots().len() {
            return Err(ProofError::BadWitnessShape { step: i });
        }
        check_witness(g, q, step, &eq, i)?;
        eq.union(step.pair.0, step.pair.1);
    }
    if eq.same(proof.target.0, proof.target.1) {
        Ok(())
    } else {
        Err(ProofError::TargetNotReached)
    }
}

/// Validates one witness: anchor binding, slot conditions (with `Eq` for
/// entity variables), per-side injectivity, and every pattern edge on both
/// sides.
fn check_witness<V: GraphView>(
    g: &V,
    q: &gk_isomorph::PairPattern,
    step: &ProofStep,
    eq: &EqRel,
    idx: usize,
) -> Result<(), ProofError> {
    let bad = |reason: String| ProofError::BadWitness { step: idx, reason };
    let w = &step.witness;

    // Anchor must bind the claimed pair (in either order).
    let (a1, a2) = w[q.anchor() as usize];
    let anchor_pair = match (a1.as_entity(), a2.as_entity()) {
        (Some(x), Some(y)) => norm(x, y),
        _ => return Err(bad("anchor bound to a value".into())),
    };
    if anchor_pair != step.pair {
        return Err(bad("anchor does not bind the claimed pair".into()));
    }

    // Injectivity per side.
    for side in 0..2 {
        let mut seen = std::collections::HashSet::new();
        for &(x, y) in w {
            let n = if side == 0 { x } else { y };
            if !seen.insert(n) {
                return Err(bad(format!("side-{} mapping not injective", side + 1)));
            }
        }
    }

    // Slot conditions.
    for (slot, &(n1, n2)) in w.iter().enumerate() {
        match q.slots()[slot] {
            SlotKind::Anchor(ty) => {
                let (Some(x), Some(y)) = (n1.as_entity(), n2.as_entity()) else {
                    return Err(bad("anchor slot not entities".into()));
                };
                if g.entity_type(x) != ty || g.entity_type(y) != ty {
                    return Err(bad("anchor type mismatch".into()));
                }
            }
            SlotKind::EqEntity(ty) => {
                let (Some(x), Some(y)) = (n1.as_entity(), n2.as_entity()) else {
                    return Err(bad("entity-variable slot not entities".into()));
                };
                if g.entity_type(x) != ty || g.entity_type(y) != ty {
                    return Err(bad("entity-variable type mismatch".into()));
                }
                if !eq.same(x, y) {
                    return Err(bad(format!(
                        "entity-variable pair {x:?}/{y:?} not yet identified"
                    )));
                }
            }
            SlotKind::Wildcard(ty) => {
                let (Some(x), Some(y)) = (n1.as_entity(), n2.as_entity()) else {
                    return Err(bad("wildcard slot not entities".into()));
                };
                if g.entity_type(x) != ty || g.entity_type(y) != ty {
                    return Err(bad("wildcard type mismatch".into()));
                }
            }
            SlotKind::ValueVar => {
                if !n1.is_value() || n1 != n2 {
                    return Err(bad("value-variable slot must bind one shared value".into()));
                }
            }
            SlotKind::Const(d) => {
                if n1 != NodeId::value(d) || n2 != n1 {
                    return Err(bad("constant slot mismatch".into()));
                }
            }
        }
    }

    // Pattern edges on both sides.
    for t in q.triples() {
        let (s1, s2) = w[t.s as usize];
        let (o1, o2) = w[t.o as usize];
        let se1 = s1.as_entity().ok_or_else(|| bad("value subject".into()))?;
        let se2 = s2.as_entity().ok_or_else(|| bad("value subject".into()))?;
        if !g.has(se1, t.p, o1.to_obj()) || !g.has(se2, t.p, o2.to_obj()) {
            return Err(bad(format!(
                "pattern edge {} missing in the graph",
                g.pred_str(t.p)
            )));
        }
    }
    let _ = IdentityEq; // (kept for symmetry with the matcher's API)
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            "#,
        )
        .unwrap()
    }

    fn sigma(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    fn e(g: &Graph, n: &str) -> EntityId {
        g.entity_named(n).unwrap()
    }

    #[test]
    fn prove_and_verify_value_based() {
        let g = g1();
        let keys = sigma(&g);
        let p = prove(&g, &keys, e(&g, "alb1"), e(&g, "alb2")).unwrap();
        assert_eq!(p.len(), 1);
        verify(&g, &keys, &p).unwrap();
    }

    #[test]
    fn prove_and_verify_recursive_chain() {
        let g = g1();
        let keys = sigma(&g);
        let p = prove(&g, &keys, e(&g, "art1"), e(&g, "art2")).unwrap();
        // Needs the album step first, then the artist step.
        assert_eq!(p.len(), 2);
        verify(&g, &keys, &p).unwrap();
        // Steps are ordered: albums before artists.
        assert_eq!(p.steps[0].pair, norm(e(&g, "alb1"), e(&g, "alb2")));
        assert_eq!(p.steps[1].pair, norm(e(&g, "art1"), e(&g, "art2")));
    }

    #[test]
    fn unidentifiable_pairs_have_no_proof() {
        let g = g1();
        let keys = sigma(&g);
        assert!(prove(&g, &keys, e(&g, "alb1"), e(&g, "art1")).is_none());
    }

    #[test]
    fn tampered_witness_is_rejected() {
        let g = g1();
        let keys = sigma(&g);
        let mut p = prove(&g, &keys, e(&g, "art1"), e(&g, "art2")).unwrap();
        // Corrupt the recursive step's witness: swap the album binding for
        // the artist pair itself.
        let last = p.steps.len() - 1;
        let w = &mut p.steps[last].witness;
        for b in w.iter_mut() {
            if let (Some(x), Some(_)) = (b.0.as_entity(), b.1.as_entity()) {
                if x == e(&g, "alb1") {
                    *b = (NodeId::entity(e(&g, "alb1")), NodeId::entity(e(&g, "alb1")));
                }
            }
        }
        assert!(verify(&g, &keys, &p).is_err());
    }

    #[test]
    fn reordered_steps_are_rejected() {
        // The artist step cannot precede the album step it depends on.
        let g = g1();
        let keys = sigma(&g);
        let mut p = prove(&g, &keys, e(&g, "art1"), e(&g, "art2")).unwrap();
        p.steps.reverse();
        let err = verify(&g, &keys, &p).unwrap_err();
        assert!(matches!(err, ProofError::BadWitness { .. }), "{err}");
    }

    #[test]
    fn dropped_final_step_misses_target() {
        let g = g1();
        let keys = sigma(&g);
        let mut p = prove(&g, &keys, e(&g, "art1"), e(&g, "art2")).unwrap();
        p.steps.pop();
        assert_eq!(
            verify(&g, &keys, &p).unwrap_err(),
            ProofError::TargetNotReached
        );
    }

    #[test]
    fn bad_key_index_rejected() {
        let g = g1();
        let keys = sigma(&g);
        let mut p = prove(&g, &keys, e(&g, "alb1"), e(&g, "alb2")).unwrap();
        p.steps[0].key = 99;
        assert_eq!(
            verify(&g, &keys, &p).unwrap_err(),
            ProofError::BadKey { step: 0 }
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        let g = g1();
        let keys = sigma(&g);
        let mut p = prove(&g, &keys, e(&g, "alb1"), e(&g, "alb2")).unwrap();
        p.steps[0].witness.pop();
        assert_eq!(
            verify(&g, &keys, &p).unwrap_err(),
            ProofError::BadWitnessShape { step: 0 }
        );
    }
}
