//! Shared preparation for the parallel algorithms: candidate sets,
//! d-neighborhood caches, and the dependency index used by the
//! entity-dependency optimization (§4.2) and the product graph (§5.1).

use crate::candidates::{
    candidate_pairs, norm, pairing_filter_timed, type_pair_count, CandidateMode, PairedCandidate,
};
use crate::keyset::CompiledKeySet;
use gk_graph::{d_neighborhood, EntityId, GraphView, NodeSet};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Cached d-neighborhoods `G^d` for every entity occurring in the
/// candidate set, with `d` the max radius of the keys on the entity's type
/// (§4.1). Built in parallel; the in-process analogue of the paper's
/// HaLoop-style on-disk cache.
#[derive(Debug, Default)]
pub struct NeighborhoodCache {
    map: FxHashMap<EntityId, NodeSet>,
}

impl NeighborhoodCache {
    /// Builds the cache for all entities mentioned in `pairs`.
    pub fn build<V: GraphView>(
        g: &V,
        keys: &CompiledKeySet,
        pairs: &[(EntityId, EntityId)],
    ) -> Self {
        Self::build_timed(g, keys, pairs).0
    }

    /// [`build`](Self::build) plus the total parallelizable work spent
    /// (sum of per-entity BFS times), for the simulated-makespan accounting.
    pub fn build_timed<V: GraphView>(
        g: &V,
        keys: &CompiledKeySet,
        pairs: &[(EntityId, EntityId)],
    ) -> (Self, std::time::Duration) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut ents: Vec<EntityId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        ents.sort_unstable();
        ents.dedup();
        let work_ns = AtomicU64::new(0);
        let sets: Vec<(EntityId, NodeSet)> = ents
            .par_iter()
            .map(|&e| {
                let t0 = std::time::Instant::now();
                let d = keys.radius_of_type(g.entity_type(e));
                let set = (e, d_neighborhood(g, e, d));
                work_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                set
            })
            .collect();
        (
            NeighborhoodCache {
                map: sets.into_iter().collect(),
            },
            std::time::Duration::from_nanos(work_ns.load(Ordering::Relaxed)),
        )
    }

    /// The cached neighborhood of `e`.
    ///
    /// # Panics
    /// Panics if `e` was not part of the candidate set the cache was built
    /// for.
    pub fn get(&self, e: EntityId) -> &NodeSet {
        self.map.get(&e).expect("entity not in neighborhood cache")
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total nodes across all cached neighborhoods (for the |G^d| metrics
    /// of §6 Exp-1/Exp-3).
    pub fn total_nodes(&self) -> usize {
        self.map.values().map(NodeSet::len).sum()
    }
}

/// Fully prepared input for the *base* algorithms: the candidate list `L`
/// plus shared neighborhoods.
pub struct BasePrep {
    /// The candidate set `L` (normalized pairs).
    pub pairs: Vec<(EntityId, EntityId)>,
    /// d-neighborhoods for every entity in `L`.
    pub hoods: NeighborhoodCache,
    /// Total parallelizable preprocessing work (per-item time summed);
    /// an ideal p-worker driver spends `work / p` on it.
    pub work: std::time::Duration,
}

/// Prepares the base candidate set (the paper's unoptimized `L`).
pub fn prepare_base<V: GraphView>(g: &V, keys: &CompiledKeySet, mode: CandidateMode) -> BasePrep {
    let pairs = candidate_pairs(g, keys, mode);
    let (hoods, work) = NeighborhoodCache::build_timed(g, keys, &pairs);
    BasePrep { pairs, hoods, work }
}

/// Fully prepared input for the *optimized* algorithms (§4.2): pairing-
/// filtered candidates with reduced scopes, the dependency index, and the
/// initial frontier `L0`.
pub struct OptPrep {
    /// Surviving candidates with reduced scopes and per-pair key lists.
    pub candidates: Vec<PairedCandidate>,
    /// `candidates` index by pair.
    pub index: FxHashMap<(EntityId, EntityId), usize>,
    /// Reverse dependency index: dep pair → indices of candidates waiting
    /// on it.
    pub dependents: FxHashMap<(EntityId, EntityId), Vec<usize>>,
    /// Indices of initially eligible candidates (the frontier `L0`).
    pub frontier: Vec<usize>,
    /// Size of `L` before the pairing filter (for reduction metrics).
    pub unfiltered: usize,
    /// Total parallelizable preprocessing work (neighborhoods + pairing
    /// filter); an ideal p-worker driver spends `work / p` on it.
    pub work: std::time::Duration,
}

/// Runs candidate generation + the pairing filter of §4.2 and assembles the
/// dependency index.
pub fn prepare_opt<V: GraphView>(g: &V, keys: &CompiledKeySet, mode: CandidateMode) -> OptPrep {
    let unfiltered = type_pair_count(g, keys);
    let raw = candidate_pairs(g, keys, mode);
    let (hoods, hood_work) = NeighborhoodCache::build_timed(g, keys, &raw);
    let (mut candidates, filter_work) =
        pairing_filter_timed(g, keys, &raw, |e| hoods.get(e).clone());
    candidates.sort_by_key(|c| c.pair);
    let work = hood_work + filter_work;

    let mut index = FxHashMap::default();
    let mut dependents: FxHashMap<(EntityId, EntityId), Vec<usize>> = FxHashMap::default();
    let mut frontier = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        index.insert(c.pair, i);
        if c.initially_eligible {
            frontier.push(i);
        }
        // Register every dependency — even pairs that are not themselves
        // candidates: they can still enter Eq through the *transitive
        // closure* of other identifications, and the watcher must fire then.
        for &d in &c.deps {
            dependents.entry(norm(d.0, d.1)).or_default().push(i);
        }
    }
    OptPrep {
        candidates,
        index,
        dependents,
        frontier,
        unfiltered,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Other"
            "#,
        )
        .unwrap()
    }

    fn keys(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    #[test]
    fn base_prep_covers_all_entities() {
        let g = g1();
        let ks = keys(&g);
        let prep = prepare_base(&g, &ks, CandidateMode::TypePairs);
        // alb3 carries a single attribute edge while Q2 demands two, so
        // degree pruning drops it at enumeration: one album pair
        // (alb1, alb2) plus one artist pair survive.
        assert_eq!(prep.pairs.len(), 1 + 1);
        for &(a, b) in &prep.pairs {
            assert!(!prep.hoods.get(a).is_empty());
            assert!(!prep.hoods.get(b).is_empty());
        }
    }

    #[test]
    fn opt_prep_filters_and_indexes() {
        let g = g1();
        let ks = keys(&g);
        let prep = prepare_opt(&g, &ks, CandidateMode::TypePairs);
        assert_eq!(prep.unfiltered, 4);
        // Only (alb1, alb2) and (art1, art2) survive pairing.
        assert_eq!(prep.candidates.len(), 2);
        // Frontier = value-based album pair only.
        assert_eq!(prep.frontier.len(), 1);
        let alb_pair = prep.candidates[prep.frontier[0]].pair;
        let e = |n: &str| g.entity_named(n).unwrap();
        assert_eq!(alb_pair, norm(e("alb1"), e("alb2")));
        // The artist pair waits on the album pair.
        let deps = prep
            .dependents
            .get(&alb_pair)
            .expect("artists depend on albums");
        assert_eq!(deps.len(), 1);
        assert_eq!(prep.candidates[deps[0]].pair, norm(e("art1"), e("art2")));
    }

    #[test]
    fn neighborhood_cache_total_nodes_positive() {
        let g = g1();
        let ks = keys(&g);
        let prep = prepare_base(&g, &ks, CandidateMode::TypePairs);
        assert!(prep.hoods.total_nodes() > prep.hoods.len());
    }
}
