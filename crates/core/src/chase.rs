//! The chase for keys — reference sequential implementation (§3.1).
//!
//! The chase starts from the node-identity relation `Eq0` and repeatedly
//! applies *chase steps*: pick a not-yet-identified same-type pair
//! `(e1, e2)` certified by some key under the current `Eq`, and extend `Eq`
//! with it (closing under equivalence). Proposition 1 (Church–Rosser): all
//! terminal chasing sequences are finite and produce the same result,
//! regardless of the order in which keys are applied — which is what makes
//! `chase(G, Σ)` well-defined and this single-threaded implementation the
//! ground truth the parallel algorithms are validated against.

use crate::candidates::{candidate_pairs, norm, CandidateMode};
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use gk_graph::{EntityId, GraphView};
use gk_isomorph::{eval_pair, MatchScope};
use gk_metrics::trace::Span;

/// One applied chase step: which pair, certified by which key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseStep {
    /// The identified pair (normalized).
    pub pair: (EntityId, EntityId),
    /// Index into [`CompiledKeySet::keys`] of the certifying key.
    pub key: usize,
}

/// Result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The final equivalence relation — `chase(G, Σ)`.
    pub eq: EqRel,
    /// The applied steps, in order.
    pub steps: Vec<ChaseStep>,
    /// Number of fixpoint sweeps over the candidate list.
    pub rounds: usize,
    /// Number of key evaluations performed (subgraph-isomorphism checks).
    pub iso_checks: u64,
    /// Candidate pairs initially enumerated (before any round pruned or
    /// extended them).
    pub candidates: usize,
    /// Pairs re-enqueued by dependency wake-ups: pairs that only became
    /// evaluable after another pair was identified (0 for engines without
    /// a wake-up worklist).
    pub wake_ups: u64,
}

impl ChaseResult {
    /// All identified pairs `(a, b)`, `a < b` — the closure.
    pub fn identified_pairs(&self) -> Vec<(EntityId, EntityId)> {
        self.eq.identified_pairs()
    }
}

/// The order in which candidate pairs are attempted. By Church–Rosser the
/// final result is order-independent; property tests exercise this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChaseOrder {
    /// Ascending pair order.
    #[default]
    Deterministic,
    /// Pseudo-random order derived from the seed.
    Shuffled(u64),
}

/// Runs the sequential reference chase to the fixpoint.
///
/// Matching is unscoped (whole graph): any match of a connected pattern
/// anchored at an entity already lies within its d-neighborhood, so this is
/// equivalent to — and simpler than — the neighborhood-scoped variants used
/// by the parallel algorithms (§4.1 data locality).
pub fn chase_reference<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    order: ChaseOrder,
) -> ChaseResult {
    chase_reference_traced(g, keys, order, &Span::disabled())
}

/// [`chase_reference`] with per-request tracing: records an `enumerate`
/// child span for candidate enumeration and one `round` child per
/// fixpoint sweep (counters: pairs examined, iso checks, merges). With
/// a disabled span this *is* `chase_reference`.
pub fn chase_reference_traced<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    order: ChaseOrder,
    span: &Span,
) -> ChaseResult {
    let enum_span = span.child("enumerate");
    let mut pairs = candidate_pairs(g, keys, CandidateMode::TypePairs);
    if let ChaseOrder::Shuffled(seed) = order {
        shuffle(&mut pairs, seed);
    }
    let candidates = pairs.len();
    enum_span.count("candidates", candidates as u64);
    enum_span.finish();
    let mut eq = EqRel::identity(g.num_entities());
    let mut steps = Vec::new();
    let mut rounds = 0usize;
    let mut iso_checks = 0u64;
    loop {
        rounds += 1;
        let round_span = span.child("round");
        let round_iso0 = iso_checks;
        let round_merges0 = steps.len();
        round_span.count("candidates", pairs.len() as u64);
        let mut progressed = false;
        let mut remaining = Vec::with_capacity(pairs.len());
        for &(a, b) in &pairs {
            if eq.same(a, b) {
                continue; // subsumed by closure; drop from future rounds
            }
            let t = g.entity_type(a);
            let mut hit = None;
            for &ki in keys.keys_on(t) {
                iso_checks += 1;
                if eval_pair(
                    g,
                    &keys.keys[ki].pattern,
                    a,
                    b,
                    &eq,
                    MatchScope::whole_graph(),
                ) {
                    hit = Some(ki);
                    break; // one certifying key suffices (§4.1)
                }
            }
            match hit {
                Some(ki) => {
                    eq.union(a, b);
                    steps.push(ChaseStep {
                        pair: norm(a, b),
                        key: ki,
                    });
                    progressed = true;
                }
                None => remaining.push((a, b)),
            }
        }
        pairs = remaining;
        round_span.count("iso_checks", iso_checks - round_iso0);
        round_span.count("merges", (steps.len() - round_merges0) as u64);
        round_span.finish();
        if !progressed {
            break;
        }
    }
    ChaseResult {
        eq,
        steps,
        rounds,
        iso_checks,
        candidates,
        // The reference chase re-sweeps the whole remaining list every
        // round instead of waking dependents selectively.
        wake_ups: 0,
    }
}

/// Fisher–Yates with a splitmix64 stream; avoids pulling `rand` into the
/// library's runtime dependencies. Shared with the parallel chase.
pub(crate) fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    /// The paper's G1 (Fig. 2) with Σ1 = {Q1, Q2, Q3} (Example 7).
    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Anthology 2"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    fn sigma1(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q1" album(x) { x -name_of-> n*; x -recorded_by-> a:artist; }
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    fn e(g: &Graph, n: &str) -> EntityId {
        g.entity_named(n).unwrap()
    }

    #[test]
    fn example7_album_then_artist() {
        // (G1, Σ1) |= (alb1, alb2) by Q2, then |= (art1, art2) by Q3.
        let g = g1();
        let r = chase_reference(&g, &sigma1(&g), ChaseOrder::Deterministic);
        let pairs = r.identified_pairs();
        assert_eq!(
            pairs,
            vec![
                norm(e(&g, "alb1"), e(&g, "alb2")),
                norm(e(&g, "art1"), e(&g, "art2"))
            ]
        );
        // The artists must come after the albums in the step order:
        // Q3 is recursive and depends on the albums' identification.
        let alb_idx = r
            .steps
            .iter()
            .position(|s| s.pair == norm(e(&g, "alb1"), e(&g, "alb2")))
            .unwrap();
        let art_idx = r
            .steps
            .iter()
            .position(|s| s.pair == norm(e(&g, "art1"), e(&g, "art2")))
            .unwrap();
        assert!(alb_idx < art_idx);
    }

    #[test]
    fn church_rosser_under_shuffled_orders() {
        let g = g1();
        let keys = sigma1(&g);
        let base = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
        for seed in 0..10 {
            let alt = chase_reference(&g, &keys, ChaseOrder::Shuffled(seed)).identified_pairs();
            assert_eq!(base, alt, "chase result differs under seed {seed}");
        }
    }

    /// The paper's G2 (Fig. 2) with Σ2 = {Q4, Q5} (Example 7): AT&T (com0)
    /// split into com1/com2/com3; com1 and com3 (resp. com2 and com3) are
    /// the parents of the post-merger com4 (resp. com5).
    fn g2() -> Graph {
        parse_graph(
            r#"
            com0:company name_of   "AT&T"
            com1:company name_of   "AT&T"
            com2:company name_of   "AT&T"
            com3:company name_of   "SBC"
            com4:company name_of   "AT&T"
            com5:company name_of   "AT&T"
            com0:company parent_of com1:company
            com0:company parent_of com2:company
            com0:company parent_of com3:company
            com1:company parent_of com4:company
            com2:company parent_of com5:company
            com3:company parent_of com4:company
            com3:company parent_of com5:company
            "#,
        )
        .unwrap()
    }

    fn sigma2(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q4" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                q:company -parent_of-> x;
            }
            key "Q5" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                ~p:company -parent_of-> d:company;
            }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    #[test]
    fn example7_companies() {
        let g = g2();
        let r = chase_reference(&g, &sigma2(&g), ChaseOrder::Deterministic);
        let pairs = r.identified_pairs();
        assert!(
            pairs.contains(&norm(e(&g, "com4"), e(&g, "com5"))),
            "Q4 fires: {pairs:?}"
        );
        assert!(
            pairs.contains(&norm(e(&g, "com1"), e(&g, "com2"))),
            "Q5 fires: {pairs:?}"
        );
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn example7_wildcard_needs_no_prior_identification() {
        // The paper's point about separating ȳ from y: com4/com5 are
        // identified by Q4 alone — the wildcard parents com1/com2 need NOT
        // be identified first (Example 7).
        let g = g2();
        let q4_only = KeySet::parse(
            r#"
            key "Q4" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                q:company -parent_of-> x;
            }
            "#,
        )
        .unwrap()
        .compile(&g);
        let r = chase_reference(&g, &q4_only, ChaseOrder::Deterministic);
        assert_eq!(
            r.identified_pairs(),
            vec![norm(e(&g, "com4"), e(&g, "com5"))]
        );
    }

    #[test]
    fn no_keys_means_no_identifications() {
        let g = g1();
        let empty = KeySet::parse("").unwrap().compile(&g);
        let r = chase_reference(&g, &empty, ChaseOrder::Deterministic);
        assert!(r.identified_pairs().is_empty());
        assert_eq!(r.iso_checks, 0);
    }

    #[test]
    fn value_based_only_converges_in_two_rounds() {
        let g = g1();
        let keys = KeySet::parse("key \"Q2\" album(x) { x -name_of-> n*; x -release_year-> y*; }")
            .unwrap()
            .compile(&g);
        let r = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        assert_eq!(
            r.identified_pairs(),
            vec![norm(e(&g, "alb1"), e(&g, "alb2"))]
        );
        // Round 1 identifies, round 2 observes the fixpoint.
        assert_eq!(r.rounds, 2);
    }

    #[test]
    fn recursion_needs_multiple_rounds() {
        let g = g1();
        let r = chase_reference(&g, &sigma1(&g), ChaseOrder::Deterministic);
        assert!(r.rounds >= 2, "Q3 can only fire after Q2's identification");
    }

    #[test]
    fn chase_is_idempotent() {
        // Chasing an already-chased graph adds nothing: re-run with the
        // final Eq seeded (simulated by checking steps are stable).
        let g = g1();
        let keys = sigma1(&g);
        let r1 = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        let r2 = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        assert_eq!(r1.identified_pairs(), r2.identified_pairs());
        assert_eq!(r1.steps, r2.steps);
    }
}
