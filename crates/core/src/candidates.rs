//! Candidate pair generation — the set `L` of §4.1 and its reductions
//! (§4.2).
//!
//! The base candidate set contains every unordered same-type entity pair on
//! whose type at least one key is defined. The optimized algorithms shrink
//! it twice:
//!
//! 1. **value blocking** (cheap): a key with a value variable or constant
//!    attached to `x` can only identify pairs that *share* that attribute
//!    value — so candidates are drawn from per-value buckets instead of the
//!    full type cross-product;
//! 2. **pairing** (Prop. 9, §4.2): keep only pairs paired by some key.

use crate::keyset::CompiledKeySet;
use gk_graph::{DegreeBuckets, DegreeReq, EntityId, GraphView, NodeId, Obj, TypeId};
use gk_isomorph::{pairing_at, SlotKind};
use rustc_hash::{FxHashMap, FxHashSet};

/// Normalizes a pair to `(min, max)` order.
#[inline]
pub fn norm(a: EntityId, b: EntityId) -> (EntityId, EntityId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// How to enumerate the candidate set `L`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// The paper's base `L`: all same-type pairs with ≥1 key defined.
    #[default]
    TypePairs,
    /// Value blocking: per key, pairs sharing a key-relevant attribute
    /// value; falls back to type pairs for keys without one.
    Blocked,
}

/// Number of pairs in the paper's base candidate set `L` (all same-type
/// pairs with ≥1 key defined), without materializing it.
pub fn type_pair_count<V: GraphView>(g: &V, keys: &CompiledKeySet) -> usize {
    keys.keyed_types()
        .map(|t| {
            let n = g.entities_of_type(t).len();
            // A keyed type can have fewer than two entities (e.g. an
            // interned type nothing was ever inserted under): `n * (n - 1)`
            // underflows at n = 0, so guard explicitly.
            if n < 2 {
                0
            } else {
                n * (n - 1) / 2
            }
        })
        .sum()
}

/// Enumerates the candidate set `L` for the compiled keys, degree-pruned:
/// builds a fresh [`DegreeBuckets`] index over the view and delegates to
/// [`candidate_pairs_pruned`].
pub fn candidate_pairs<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    mode: CandidateMode,
) -> Vec<(EntityId, EntityId)> {
    let degrees = DegreeBuckets::build(g);
    candidate_pairs_pruned(g, keys, mode, &degrees)
}

/// Enumerates `L` using a prebuilt degree index (callers that maintain
/// [`DegreeBuckets`] across overlay epochs can skip the rebuild).
///
/// Degree pruning is sound with respect to the paired matcher: a pair
/// `(a, b)` identified by key `Q(x)` witnesses a match anchored at both
/// entities, and the matcher's injectivity forces distinct pattern triples
/// incident to the anchor onto distinct graph edges — so both entities
/// satisfy `Q`'s [`anchor_req`](gk_isomorph::PairPattern::anchor_req).
/// Entities failing every key's requirement can never appear in an
/// identified pair and are dropped before any pair is materialized.
pub fn candidate_pairs_pruned<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    mode: CandidateMode,
    degrees: &DegreeBuckets,
) -> Vec<(EntityId, EntityId)> {
    match mode {
        CandidateMode::TypePairs => {
            let mut out = Vec::new();
            for t in keys.keyed_types() {
                // An entity stays if it meets the anchor demand of at
                // least one key on its type (per-key exactness belongs to
                // the Blocked mode; the union keeps `L` a superset).
                let reqs: Vec<DegreeReq> = keys
                    .keys_on(t)
                    .iter()
                    .map(|&ki| keys.keys[ki].pattern.anchor_req())
                    .collect();
                if !reqs.iter().any(|&r| degrees.possible(t, r)) {
                    continue;
                }
                let admitted: Vec<EntityId> = g
                    .entities_of_type(t)
                    .iter()
                    .filter(|&e| reqs.iter().any(|&r| degrees.satisfies(e, r)))
                    .collect();
                for (i, &a) in admitted.iter().enumerate() {
                    for &b in &admitted[i + 1..] {
                        out.push((a, b));
                    }
                }
            }
            out
        }
        CandidateMode::Blocked => {
            let mut set: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
            for ck in &keys.keys {
                blocked_candidates_for_key(g, ck.target_type, &ck.pattern, degrees, &mut set);
            }
            let mut out: Vec<_> = set.into_iter().collect();
            out.sort_unstable();
            out
        }
    }
}

/// Candidates that could be identified by one key, using the most selective
/// value attribute attached to `x` as a blocking predicate; entities that
/// fail the key's anchor degree demand are skipped before bucketing.
fn blocked_candidates_for_key<V: GraphView>(
    g: &V,
    target: TypeId,
    q: &gk_isomorph::PairPattern,
    degrees: &DegreeBuckets,
    out: &mut FxHashSet<(EntityId, EntityId)>,
) {
    let req = q.anchor_req();
    if !degrees.possible(target, req) {
        return;
    }
    // Find a triple (x, p, v) where v is a ValueVar or Const: pairs must
    // share the p-value, so same-value buckets cover all candidates.
    let anchor = q.anchor();
    let block = q.triples().iter().find(|t| {
        t.s == anchor
            && matches!(
                q.slots()[t.o as usize],
                SlotKind::ValueVar | SlotKind::Const(_)
            )
    });
    match block {
        Some(t) => {
            // Bucket entities of the target type by their p-values.
            let mut buckets: FxHashMap<gk_graph::ValueId, Vec<EntityId>> = FxHashMap::default();
            for e in g.entities_of_type(target) {
                if !degrees.satisfies(e, req) {
                    continue;
                }
                for &(_, o) in g.out_with(e, t.p) {
                    if let Obj::Value(v) = o {
                        if let SlotKind::Const(d) = q.slots()[t.o as usize] {
                            if v != d {
                                continue;
                            }
                        }
                        buckets.entry(v).or_default().push(e);
                    }
                }
            }
            for bucket in buckets.values() {
                for (i, &a) in bucket.iter().enumerate() {
                    for &b in &bucket[i + 1..] {
                        out.insert(norm(a, b));
                    }
                }
            }
        }
        None => {
            // No value attribute on x: fall back to the cross-product of
            // the degree-admitted entities of the target type.
            let admitted: Vec<EntityId> = g
                .entities_of_type(target)
                .iter()
                .filter(|&e| degrees.satisfies(e, req))
                .collect();
            for (i, &a) in admitted.iter().enumerate() {
                for &b in &admitted[i + 1..] {
                    out.insert(norm(a, b));
                }
            }
        }
    }
}

/// Per-pair pairing metadata computed while filtering `L` (§4.2): which keys
/// pair the candidate, its reduced scopes, dependencies and eligibility.
#[derive(Clone, Debug)]
pub struct PairedCandidate {
    /// The candidate pair (normalized).
    pub pair: (EntityId, EntityId),
    /// Indices (into `CompiledKeySet::keys`) of keys that pair it.
    pub keys: Vec<usize>,
    /// Reduced side-1 scope: nodes appearing in some pairing relation.
    pub scope1: gk_graph::NodeSet,
    /// Reduced side-2 scope.
    pub scope2: gk_graph::NodeSet,
    /// Pairs this candidate depends on (recursive-slot pairs `(a,b)`,
    /// `a ≠ b`): identifying one of them may enable this candidate.
    pub deps: Vec<(EntityId, EntityId)>,
    /// Every (side-1, side-2) node pair occurring in some slot of some
    /// pairing relation of this candidate — the raw material of the
    /// product graph `Gp` (§5.1).
    pub slot_pairs: Vec<(NodeId, NodeId)>,
    /// True iff some pairing key admits identity bindings for *all* its
    /// recursive slots — the candidate could fire against `Eq0` and belongs
    /// in the initial frontier `L0` (§4.2 entity-dependency seeding).
    pub initially_eligible: bool,
}

/// Applies the pairing filter of §4.2 to a candidate list: drops pairs not
/// paired by any key and records reduced scopes plus dependency structure
/// for the survivors.
///
/// `neighborhood(e)` must return the d-neighborhood of `e` for `d` =
/// max radius of the keys on `e`'s type (used to bound pairing).
pub fn pairing_filter<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    pairs: &[(EntityId, EntityId)],
    neighborhood: impl Fn(EntityId) -> gk_graph::NodeSet + Sync,
) -> Vec<PairedCandidate> {
    pairing_filter_timed(g, keys, pairs, neighborhood).0
}

/// [`pairing_filter`] plus the *total parallelizable work* spent filtering
/// (sum of per-pair times). The simulated-scalability reports charge this
/// work as `work / p` — the filter is embarrassingly parallel, so an ideal
/// `p`-worker cluster divides it evenly (§4.2 runs it inside the driver).
pub fn pairing_filter_timed<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    pairs: &[(EntityId, EntityId)],
    neighborhood: impl Fn(EntityId) -> gk_graph::NodeSet + Sync,
) -> (Vec<PairedCandidate>, std::time::Duration) {
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    let work_ns = AtomicU64::new(0);
    let out = pairs
        .par_iter()
        .filter_map(|&(a, b)| {
            let t0 = std::time::Instant::now();
            let result = (|| {
                let t = g.entity_type(a);
                let n1 = neighborhood(a);
                let n2 = neighborhood(b);
                let mut hit_keys = Vec::new();
                let mut deps: Vec<(EntityId, EntityId)> = Vec::new();
                let mut eligible = false;
                let mut nodes1: Vec<NodeId> = Vec::new();
                let mut nodes2: Vec<NodeId> = Vec::new();
                let mut slot_pairs: Vec<(NodeId, NodeId)> = Vec::new();
                for &ki in keys.keys_on(t) {
                    let q = &keys.keys[ki].pattern;
                    let p = pairing_at(g, q, a, b, Some(&n1), Some(&n2));
                    if !p.pairable(q, a, b) {
                        continue;
                    }
                    hit_keys.push(ki);
                    deps.extend(p.dependency_pairs(q));
                    eligible |= p.recursive_identity_possible(q);
                    nodes1.extend(p.side_nodes(0).iter());
                    nodes2.extend(p.side_nodes(1).iter());
                    for set in &p.per_slot {
                        slot_pairs.extend(set.iter().copied());
                    }
                }
                if hit_keys.is_empty() {
                    return None;
                }
                deps.sort_unstable();
                deps.dedup();
                deps.retain(|&d| d != norm(a, b));
                slot_pairs.sort_unstable();
                slot_pairs.dedup();
                Some(PairedCandidate {
                    pair: norm(a, b),
                    keys: hit_keys,
                    scope1: gk_graph::NodeSet::from_nodes(nodes1),
                    scope2: gk_graph::NodeSet::from_nodes(nodes2),
                    deps,
                    slot_pairs,
                    initially_eligible: eligible,
                })
            })();
            work_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            result
        })
        .collect();
    (
        out,
        std::time::Duration::from_nanos(work_ns.load(Ordering::Relaxed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::KeySet;
    use gk_graph::Graph;
    use gk_graph::{d_neighborhood, parse_graph};

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Other"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    fn keys(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    fn e(g: &Graph, n: &str) -> EntityId {
        g.entity_named(n).unwrap()
    }

    #[test]
    fn type_pairs_enumerates_all_same_type_pairs() {
        let g = g1();
        let ks = keys(&g);
        let l = candidate_pairs(&g, &ks, CandidateMode::TypePairs);
        // 3 albums -> 3 pairs; 3 artists -> 3 pairs.
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn blocking_drops_pairs_with_different_names() {
        let g = g1();
        let ks = keys(&g);
        let l = candidate_pairs(&g, &ks, CandidateMode::Blocked);
        // Albums: only (alb1, alb2) share name_of. Artists: (art1, art2).
        assert_eq!(l.len(), 2);
        assert!(l.contains(&norm(e(&g, "alb1"), e(&g, "alb2"))));
        assert!(l.contains(&norm(e(&g, "art1"), e(&g, "art2"))));
    }

    #[test]
    fn blocking_never_loses_type_pair_identifications() {
        // Blocking is sound: every blocked-out pair shares no key attribute
        // value, so it cannot be identified. Cross-check via pairing.
        let g = g1();
        let ks = keys(&g);
        let all = candidate_pairs(&g, &ks, CandidateMode::TypePairs);
        let blocked: FxHashSet<_> = candidate_pairs(&g, &ks, CandidateMode::Blocked)
            .into_iter()
            .collect();
        let hood = |e: EntityId| d_neighborhood(&g, e, ks.radius_of_type(g.entity_type(e)));
        for pc in pairing_filter(&g, &ks, &all, hood) {
            assert!(
                blocked.contains(&pc.pair),
                "pairable pair {:?} missing from blocked candidates",
                pc.pair
            );
        }
    }

    #[test]
    fn pairing_filter_keeps_identifiable_pairs_with_metadata() {
        let g = g1();
        let ks = keys(&g);
        let all = candidate_pairs(&g, &ks, CandidateMode::TypePairs);
        let hood = |e: EntityId| d_neighborhood(&g, e, ks.radius_of_type(g.entity_type(e)));
        let filtered = pairing_filter(&g, &ks, &all, hood);
        let pairs: Vec<_> = filtered.iter().map(|c| c.pair).collect();
        assert!(pairs.contains(&norm(e(&g, "alb1"), e(&g, "alb2"))));
        assert!(pairs.contains(&norm(e(&g, "art1"), e(&g, "art2"))));
        assert_eq!(filtered.len(), 2);

        let albums = filtered
            .iter()
            .find(|c| c.pair.0 == e(&g, "alb1").min(e(&g, "alb2")))
            .unwrap();
        assert!(albums.initially_eligible, "value-based Q2 pairs it");
        let artists = filtered
            .iter()
            .find(|c| c.pair == norm(e(&g, "art1"), e(&g, "art2")))
            .unwrap();
        assert!(!artists.initially_eligible, "artists wait for the albums");
        assert_eq!(artists.deps, vec![norm(e(&g, "alb1"), e(&g, "alb2"))]);
    }

    #[test]
    fn reduced_scopes_are_contained_in_neighborhoods() {
        let g = g1();
        let ks = keys(&g);
        let all = candidate_pairs(&g, &ks, CandidateMode::TypePairs);
        let hood = |e: EntityId| d_neighborhood(&g, e, ks.radius_of_type(g.entity_type(e)));
        for pc in pairing_filter(&g, &ks, &all, hood) {
            let h1 = d_neighborhood(&g, pc.pair.0, ks.radius_of_type(g.entity_type(pc.pair.0)));
            assert!(pc.scope1.iter().all(|n| h1.contains(n)));
            assert!(pc.scope1.len() <= h1.len());
        }
    }

    #[test]
    fn type_pair_count_survives_empty_and_singleton_keyed_types() {
        // An interned but entity-less keyed type used to underflow
        // `n * (n - 1) / 2` at n = 0 and panic in debug builds.
        let mut b = gk_graph::GraphBuilder::new();
        b.intern_type("album");
        b.intern_pred("name_of");
        let solo = b.entity("solo", "artist");
        b.attr(solo, "name_of", "The Beatles");
        let g = b.freeze();
        let ks = KeySet::parse(
            r#"
            key "Q2" album(x)  { x -name_of-> n*; }
            key "QA" artist(x) { x -name_of-> n*; }
            "#,
        )
        .unwrap()
        .compile(&g);
        assert_eq!(ks.len(), 2, "both keys compile against interned vocab");
        // n = 0 (album) and n = 1 (artist) both contribute zero pairs.
        assert_eq!(type_pair_count(&g, &ks), 0);
        assert!(candidate_pairs(&g, &ks, CandidateMode::TypePairs).is_empty());
        assert!(candidate_pairs(&g, &ks, CandidateMode::Blocked).is_empty());
    }

    #[test]
    fn degree_pruning_drops_entities_below_anchor_demand() {
        // Q2 demands two distinct out-edges of its anchor; `bare` has one,
        // so no pair involving it survives enumeration in either mode.
        let g = parse_graph(
            r#"
            alb1:album name_of      "Anthology 2"
            alb1:album release_year "1996"
            alb2:album name_of      "Anthology 2"
            alb2:album release_year "1996"
            bare:album name_of      "Anthology 2"
            "#,
        )
        .unwrap();
        let ks = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .unwrap()
            .compile(&g);
        let expect = vec![norm(e(&g, "alb1"), e(&g, "alb2"))];
        assert_eq!(candidate_pairs(&g, &ks, CandidateMode::TypePairs), expect);
        assert_eq!(candidate_pairs(&g, &ks, CandidateMode::Blocked), expect);
        // The unpruned combinatorial count still sees all three entities.
        assert_eq!(type_pair_count(&g, &ks), 3);
    }

    #[test]
    fn pruned_enumeration_reuses_a_maintained_index() {
        let g = g1();
        let ks = keys(&g);
        let degrees = gk_graph::DegreeBuckets::build(&g);
        for mode in [CandidateMode::TypePairs, CandidateMode::Blocked] {
            assert_eq!(
                candidate_pairs_pruned(&g, &ks, mode, &degrees),
                candidate_pairs(&g, &ks, mode)
            );
        }
    }

    #[test]
    fn norm_orders_pairs() {
        assert_eq!(norm(EntityId(5), EntityId(2)), (EntityId(2), EntityId(5)));
        assert_eq!(norm(EntityId(2), EntityId(5)), (EntityId(2), EntityId(5)));
    }
}
