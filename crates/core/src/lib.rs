//! # gk-core — Keys for Graphs
//!
//! A faithful implementation of *Keys for Graphs* (Fan, Fan, Tian & Dong,
//! PVLDB 8(12), 2015): keys defined as graph patterns `Q(x)`, possibly
//! **recursively**, interpreted via subgraph isomorphism; and the **entity
//! matching** problem — computing `chase(G, Σ)`, all entity pairs the keys
//! identify.
//!
//! * Define keys with the fluent [`Key::builder`] API or the textual DSL
//!   ([`parse_keys`]) that mirrors the paper's figures;
//! * analyse key sets ([`KeySet`]): size `|Σ|`, radius `d`, dependency
//!   chains `c`, mutual recursion;
//! * run entity matching with the sequential reference chase
//!   ([`chase_reference`]), the MapReduce algorithms (`EM_MR` family), or
//!   the asynchronous vertex-centric algorithms (`EM_VC` family);
//! * check key satisfaction `G |= Q(x)` and find duplicates
//!   ([`key_violations`], [`set_violations`]).
//!
//! ```
//! use gk_core::{KeySet, chase_reference, ChaseOrder};
//! use gk_graph::parse_graph;
//!
//! let g = parse_graph(r#"
//!     alb1:album name_of "Anthology 2"
//!     alb1:album release_year "1996"
//!     alb2:album name_of "Anthology 2"
//!     alb2:album release_year "1996"
//! "#).unwrap();
//! let keys = KeySet::parse(
//!     r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#,
//! ).unwrap();
//! let result = chase_reference(&g, &keys.compile(&g), ChaseOrder::default());
//! assert_eq!(result.identified_pairs().len(), 1);
//! ```

#![warn(missing_docs)]

mod analyze;
mod candidates;
mod chase;
mod discovery;
mod distributed;
mod dsl;
mod em_mr;
mod em_vc;
mod eqrel;
mod incremental;
mod keyset;
mod metrics;
mod parallel;
mod pattern;
mod prep;
mod product;
mod proof;
mod report;
mod satisfies;
mod similarity;
mod tour;

pub use analyze::{analyze_entity, EntityAnalysis};
pub use candidates::{
    candidate_pairs, candidate_pairs_pruned, norm, pairing_filter, pairing_filter_timed,
    type_pair_count, CandidateMode, PairedCandidate,
};
pub use chase::{chase_reference, chase_reference_traced, ChaseOrder, ChaseResult, ChaseStep};
pub use discovery::{discover_value_keys, DiscoveredKey, DiscoveryConfig};
pub use distributed::{chase_shard_slice, ShardRole};
pub use dsl::{parse_keys, write_keys, DslError};
pub use em_mr::{em_mr, em_mr_sim, MatchOutcome, MrVariant};
pub use em_vc::{em_vc, em_vc_sim, VcVariant};
pub use eqrel::EqRel;
pub use incremental::{chase_incremental, chase_incremental_traced};
pub use keyset::{CompiledKey, CompiledKeySet, KeySet};
pub use metrics::ChaseMetrics;
pub use parallel::{chase_parallel, chase_parallel_traced, ChaseEngine, ParallelOpts};
pub use pattern::{Key, KeyBuilder, KeyError, KeyTriple, Term};
pub use prep::{prepare_base, prepare_opt, BasePrep, NeighborhoodCache, OptPrep};
pub use product::ProductGraph;
pub use proof::{prove, verify, Proof, ProofError, ProofStep};
pub use report::RunReport;
pub use satisfies::{key_violations, satisfies, set_violations, Violation};
pub use similarity::{
    normalize_graph, normalize_keys, AlphaNum, CaseFold, CustomNormalizer, Normalizer,
};
pub use tour::{Tour, TourStep};
