//! Key sets `Σ` and their dependency structure.
//!
//! Recursively defined keys impose dependencies between *types*: key Q1
//! (album) refers to an identified artist, while Q3 (artist) refers to an
//! identified album — mutual recursion (Example 7). The paper measures key
//! complexity by `|Σ|` (total size), `||Σ||` (cardinality), the maximum
//! radius `d`, and the length `c` of the longest dependency chain; the
//! generators of §6 control `c` and `d` directly. This module computes all
//! of them, plus the compiled, per-graph form the algorithms execute.

use crate::pattern::{Key, KeyError};
use gk_graph::{GraphView, TypeId};
use gk_isomorph::PairPattern;
use petgraph::algo::{condensation, toposort};
use petgraph::graph::DiGraph;
use rustc_hash::FxHashMap;

/// A validated set of keys `Σ`.
#[derive(Clone, Debug)]
pub struct KeySet {
    keys: Vec<Key>,
}

impl KeySet {
    /// Validates every key and the set (names must be unique).
    pub fn new(keys: Vec<Key>) -> Result<Self, KeyError> {
        let mut seen = rustc_hash::FxHashSet::default();
        for k in &keys {
            k.validate()?;
            assert!(
                seen.insert(k.name.clone()),
                "duplicate key name {:?}",
                k.name
            );
        }
        Ok(KeySet { keys })
    }

    /// Parses a key set from the DSL (see [`crate::parse_keys`]).
    pub fn parse(dsl: &str) -> Result<Self, crate::dsl::DslError> {
        Ok(KeySet {
            keys: crate::dsl::parse_keys(dsl)?,
        })
    }

    /// The keys, in declaration order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// `||Σ||` — the number of keys.
    pub fn cardinality(&self) -> usize {
        self.keys.len()
    }

    /// `|Σ| = Σ_{Q ∈ Σ} |Q|` — total number of pattern triples.
    pub fn total_size(&self) -> usize {
        self.keys.iter().map(Key::size).sum()
    }

    /// The maximum radius `d` over all keys.
    pub fn max_radius(&self) -> usize {
        self.keys.iter().map(Key::radius).max().unwrap_or(0)
    }

    /// Number of recursively defined keys.
    pub fn recursive_count(&self) -> usize {
        self.keys.iter().filter(|k| k.is_recursive()).count()
    }

    /// The key-level dependency graph: an edge `i → j` when key `i` has an
    /// entity variable whose type is key `j`'s target type (identifying
    /// `i`'s pair may require a pair already identified by `j`).
    pub fn dependency_graph(&self) -> DiGraph<usize, ()> {
        let mut g: DiGraph<usize, ()> = DiGraph::new();
        let nodes: Vec<_> = (0..self.keys.len()).map(|i| g.add_node(i)).collect();
        let mut by_target: FxHashMap<&str, Vec<usize>> = FxHashMap::default();
        for (j, k) in self.keys.iter().enumerate() {
            by_target.entry(k.target_type.as_str()).or_default().push(j);
        }
        for (i, k) in self.keys.iter().enumerate() {
            for dep_ty in k.dependency_types() {
                for &j in by_target.get(dep_ty).map(Vec::as_slice).unwrap_or(&[]) {
                    g.update_edge(nodes[i], nodes[j], ());
                }
            }
        }
        g
    }

    /// The dependency-chain length `c`: the longest path (in edges) through
    /// the dependency graph, where a strongly connected component of `k`
    /// mutually recursive keys contributes `k` edges (mutual recursion, as
    /// in Q1/Q3, forms a cycle; the paper's generator parameterizes chains
    /// of dependent keys).
    pub fn longest_chain(&self) -> usize {
        let g = self.dependency_graph();
        if g.edge_count() == 0 {
            return 0;
        }
        // Condense SCCs; each condensed node's weight = extra chain length
        // contributed by the SCC itself.
        let cond = condensation(g, true);
        let order = toposort(&cond, None).expect("condensation is a DAG");
        let mut best: FxHashMap<_, usize> = FxHashMap::default();
        let mut overall = 0usize;
        for &n in order.iter().rev() {
            let own = {
                let members = &cond[n];
                if members.len() > 1 {
                    members.len()
                } else {
                    // A singleton with a self-loop in the original graph
                    // (self-recursive key) still counts as one hop.
                    usize::from(
                        self.keys[members[0]]
                            .dependency_types()
                            .contains(&self.keys[members[0]].target_type.as_str()),
                    )
                }
            };
            let succ_best = cond
                .neighbors(n)
                .map(|m| 1 + best.get(&m).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let total = own + succ_best;
            best.insert(n, total);
            overall = overall.max(total);
        }
        overall
    }

    /// Compiles the whole set against a graph.
    pub fn compile<V: GraphView>(&self, g: &V) -> CompiledKeySet {
        let mut keys = Vec::new();
        let mut skipped = Vec::new();
        for (i, k) in self.keys.iter().enumerate() {
            match k.compile(g) {
                Some(pattern) => keys.push(CompiledKey {
                    idx: keys.len(),
                    source: i,
                    name: k.name.clone(),
                    target_type: pattern.anchor_type(),
                    radius: pattern.radius(),
                    recursive: pattern.is_recursive(),
                    pattern,
                }),
                None => skipped.push(k.name.clone()),
            }
        }
        let mut by_type: FxHashMap<TypeId, Vec<usize>> = FxHashMap::default();
        let mut radius_by_type: FxHashMap<TypeId, usize> = FxHashMap::default();
        for ck in &keys {
            by_type.entry(ck.target_type).or_default().push(ck.idx);
            let r = radius_by_type.entry(ck.target_type).or_insert(0);
            *r = (*r).max(ck.radius);
        }
        CompiledKeySet {
            keys,
            skipped,
            by_type,
            radius_by_type,
        }
    }
}

/// One key compiled against a specific graph.
#[derive(Clone, Debug)]
pub struct CompiledKey {
    /// Dense index within the [`CompiledKeySet`].
    pub idx: usize,
    /// Index of the originating [`Key`] in the source [`KeySet`].
    pub source: usize,
    /// Display name.
    pub name: String,
    /// Resolved target type τ.
    pub target_type: TypeId,
    /// The executable paired pattern.
    pub pattern: PairPattern,
    /// Radius `d(Q, x)`.
    pub radius: usize,
    /// Whether the key is recursively defined.
    pub recursive: bool,
}

/// A key set compiled against a graph: only *active* keys (those whose
/// vocabulary exists in the graph) plus per-type indexes.
#[derive(Clone, Debug, Default)]
pub struct CompiledKeySet {
    /// Active keys.
    pub keys: Vec<CompiledKey>,
    /// Names of keys skipped because their vocabulary is absent.
    pub skipped: Vec<String>,
    by_type: FxHashMap<TypeId, Vec<usize>>,
    radius_by_type: FxHashMap<TypeId, usize>,
}

impl CompiledKeySet {
    /// Indices of the keys *defined on* entities of type `t` (§4.1: a key
    /// `Q(x)` is defined on `e` when `x` and `e` share a type).
    pub fn keys_on(&self, t: TypeId) -> &[usize] {
        self.by_type.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The maximum radius `d` of the keys on type `t` — the d-neighborhood
    /// bound for entities of that type (§4.1).
    pub fn radius_of_type(&self, t: TypeId) -> usize {
        self.radius_by_type.get(&t).copied().unwrap_or(0)
    }

    /// Types that have at least one key defined on them.
    pub fn keyed_types(&self) -> impl Iterator<Item = TypeId> + '_ {
        let mut ts: Vec<TypeId> = self.by_type.keys().copied().collect();
        ts.sort_unstable();
        ts.into_iter()
    }

    /// Number of active keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff no key is active.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Term;
    use gk_graph::parse_graph;

    fn paper_keys() -> KeySet {
        KeySet::parse(
            r#"
            key "Q1" album(x) { x -name_of-> n*; x -recorded_by-> a:artist; }
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn sizes() {
        let ks = paper_keys();
        assert_eq!(ks.cardinality(), 3);
        assert_eq!(ks.total_size(), 6);
        assert_eq!(ks.max_radius(), 1);
        assert_eq!(ks.recursive_count(), 2);
    }

    #[test]
    fn dependency_graph_captures_mutual_recursion() {
        let ks = paper_keys();
        let g = ks.dependency_graph();
        // Q1 -> Q3 (album key needs artist), Q3 -> Q1 and Q3 -> Q2
        // (artist key needs album, which Q1 and Q2 both identify).
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn chain_length_of_mutual_recursion() {
        let ks = paper_keys();
        // SCC {Q1, Q3} has size 2 → contributes 2; plus edge to Q2 → 3.
        assert_eq!(ks.longest_chain(), 3);
    }

    #[test]
    fn chain_length_zero_for_value_based_sets() {
        let ks = KeySet::parse("key t(x) { x -p-> v*; }").unwrap();
        assert_eq!(ks.longest_chain(), 0);
    }

    #[test]
    fn chain_length_of_linear_chain() {
        // t1 depends on t2 depends on t3: c = 2.
        let ks = KeySet::parse(
            r#"
            key t1(x) { x -p-> a:t2; }
            key t2(x) { x -p-> a:t3; }
            key t3(x) { x -p-> v*; }
            "#,
        )
        .unwrap();
        assert_eq!(ks.longest_chain(), 2);
    }

    #[test]
    fn self_recursive_key_counts_one() {
        let ks = KeySet::parse("key t(x) { x -p-> a:t; }").unwrap();
        assert_eq!(ks.longest_chain(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate key name")]
    fn duplicate_names_rejected() {
        let k = Key::builder("K", "t").value("p", "v").build().unwrap();
        let _ = KeySet::new(vec![k.clone(), k]);
    }

    #[test]
    fn compile_splits_active_and_skipped() {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album release_year "1999"
            "#,
        )
        .unwrap();
        let cks = paper_keys().compile(&g);
        // Q2 resolves; Q1/Q3 need recorded_by and artist, absent here.
        assert_eq!(cks.len(), 1);
        assert_eq!(cks.keys[0].name, "Q2");
        assert_eq!(cks.skipped, vec!["Q1".to_string(), "Q3".to_string()]);
        let album = g.etype("album").unwrap();
        assert_eq!(cks.keys_on(album), &[0]);
        assert_eq!(cks.radius_of_type(album), 1);
        assert_eq!(cks.keyed_types().collect::<Vec<_>>(), vec![album]);
    }

    #[test]
    fn radius_of_type_takes_max() {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album recorded_by r1:artist
            r1:artist based_in c1:city
            c1:city name_of "L"
            "#,
        )
        .unwrap();
        let ks = KeySet::new(vec![
            Key::builder("K1", "album")
                .value("name_of", "n")
                .build()
                .unwrap(),
            Key::builder("K2", "album")
                .triple(Term::x(), "recorded_by", Term::wildcard("a", "artist"))
                .triple(
                    Term::wildcard("a", "artist"),
                    "based_in",
                    Term::wildcard("c", "city"),
                )
                .triple(Term::wildcard("c", "city"), "name_of", Term::val("cn"))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cks = ks.compile(&g);
        assert_eq!(cks.radius_of_type(g.etype("album").unwrap()), 3);
    }
}
