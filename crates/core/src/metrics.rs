//! Chase-phase instrumentation: histogram handles the chase engines
//! report into after every invocation.
//!
//! The engines themselves stay metrics-free — they return a
//! [`ChaseResult`] with per-invocation totals (rounds, candidate pairs,
//! iso checks, wake-ups), and the *caller* decides where those numbers
//! go by holding a [`ChaseMetrics`] and calling [`ChaseMetrics::record`].
//! A caller without a registry uses [`ChaseMetrics::noop`], which
//! compiles down to four null tests.

use crate::chase::ChaseResult;
use gk_metrics::{Histogram, Registry};

/// Histogram handles for one family of chase invocations (e.g. startup
/// full chases vs. incremental delta chases — register one per family
/// with distinct prefixes).
#[derive(Clone, Copy)]
pub struct ChaseMetrics {
    /// Fixpoint rounds per invocation.
    pub rounds: Histogram,
    /// Initial candidate pairs per invocation.
    pub candidate_pairs: Histogram,
    /// Key evaluations (subgraph-isomorphism checks) per invocation.
    pub iso_checks: Histogram,
    /// Dependency wake-ups (pairs re-enqueued) per invocation.
    pub wake_ups: Histogram,
}

impl ChaseMetrics {
    /// Registers the four histograms under `<prefix>_rounds`,
    /// `<prefix>_candidate_pairs`, `<prefix>_iso_checks`,
    /// `<prefix>_wake_ups`.
    pub fn register(reg: &Registry, prefix: &str) -> ChaseMetrics {
        ChaseMetrics {
            rounds: reg.histogram(
                &format!("{prefix}_rounds"),
                "Fixpoint rounds per chase invocation.",
            ),
            candidate_pairs: reg.histogram(
                &format!("{prefix}_candidate_pairs"),
                "Initial candidate pairs per chase invocation.",
            ),
            iso_checks: reg.histogram(
                &format!("{prefix}_iso_checks"),
                "Key evaluations (isomorphism checks) per chase invocation.",
            ),
            wake_ups: reg.histogram(
                &format!("{prefix}_wake_ups"),
                "Dependency wake-ups per chase invocation.",
            ),
        }
    }

    /// Handles that record nothing (for callers without a registry).
    pub const fn noop() -> ChaseMetrics {
        ChaseMetrics {
            rounds: Histogram::noop(),
            candidate_pairs: Histogram::noop(),
            iso_checks: Histogram::noop(),
            wake_ups: Histogram::noop(),
        }
    }

    /// Records one chase invocation's totals.
    pub fn record(&self, r: &ChaseResult) {
        self.rounds.observe(r.rounds as u64);
        self.candidate_pairs.observe(r.candidates as u64);
        self.iso_checks.observe(r.iso_checks);
        self.wake_ups.observe(r.wake_ups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase_reference, ChaseOrder};
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;

    #[test]
    fn chase_results_flow_into_histograms() {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album release_year "2000"
            a2:album name_of "X"
            a2:album release_year "2000"
            "#,
        )
        .unwrap();
        let ks = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .unwrap();
        let res = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic);
        assert!(res.candidates > 0);

        let reg = Registry::new();
        let m = ChaseMetrics::register(&reg, "chase_test");
        m.record(&res);
        assert_eq!(m.rounds.count(), 1);
        assert_eq!(m.candidate_pairs.sum(), res.candidates as u64);
        assert_eq!(m.iso_checks.sum(), res.iso_checks);

        // The no-op handles never panic and never count.
        let n = ChaseMetrics::noop();
        n.record(&res);
        assert_eq!(n.rounds.count(), 0);
    }
}
