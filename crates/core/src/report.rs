//! Uniform run reports across all entity-matching algorithms, feeding the
//! experiment harness (§6): timings, candidate/confirmed counts, rounds,
//! message counts and optimization-effect metrics.

use std::time::Duration;

/// What one algorithm run did and how long it took.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Algorithm label, e.g. `"EM_MR^opt"`.
    pub algorithm: String,
    /// Number of workers `p` used.
    pub workers: usize,
    /// Size of the candidate set `L` handed to the algorithm
    /// ("candidate matches" of Table 2).
    pub candidates: usize,
    /// Identified pairs in the final closure ("confirmed matches").
    pub identified: usize,
    /// Chase steps actually applied (non-trivial merges).
    pub merges: usize,
    /// MapReduce rounds (1 for asynchronous vertex-centric runs).
    pub rounds: usize,
    /// Subgraph-isomorphism evaluations performed.
    pub iso_checks: u64,
    /// Messages propagated (vertex-centric only).
    pub messages: u64,
    /// Records shuffled between map and reduce (MapReduce only).
    pub shuffled_records: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Simulated makespan assuming `p` truly parallel workers (slowest
    /// worker's busy time; see the substrate crates). This is the paper's
    /// `t(|G|,|Σ|)/p` scalability metric when the host has fewer cores
    /// than `p`.
    pub sim_seconds: f64,
    /// Free-form extra metrics: `(name, value)`.
    pub extra: Vec<(String, String)>,
}

impl RunReport {
    /// Adds a named extra metric.
    pub fn push_extra(&mut self, name: &str, value: impl std::fmt::Display) {
        self.extra.push((name.to_string(), value.to_string()));
    }

    /// Looks up an extra metric by name.
    pub fn extra(&self, name: &str) -> Option<&str> {
        self.extra
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: p={} candidates={} identified={} merges={} rounds={} iso={} msgs={} shuffle={} in {:?}",
            self.algorithm,
            self.workers,
            self.candidates,
            self.identified,
            self.merges,
            self.rounds,
            self.iso_checks,
            self.messages,
            self.shuffled_records,
            self.elapsed
        )?;
        for (k, v) in &self.extra {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_roundtrip() {
        let mut r = RunReport {
            algorithm: "EM_VC".into(),
            ..Default::default()
        };
        r.push_extra("gp_nodes", 42);
        assert_eq!(r.extra("gp_nodes"), Some("42"));
        assert_eq!(r.extra("missing"), None);
    }

    #[test]
    fn display_contains_key_fields() {
        let r = RunReport {
            algorithm: "EM_MR".into(),
            workers: 4,
            candidates: 10,
            identified: 3,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("EM_MR"));
        assert!(s.contains("p=4"));
        assert!(s.contains("candidates=10"));
    }
}
