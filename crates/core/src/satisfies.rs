//! Key satisfaction checking: `G |= Q(x)` and `G |= Σ` (§2.2).
//!
//! A graph satisfies a key when no two *distinct* entities have coinciding
//! matches under plain node identity (`⇔`) and value equality. Violations
//! are exactly the duplicates of Example 5: `G2 ⊭ Q4` because `com4` and
//! `com5` both match with coinciding witnesses, so one of them is a
//! duplicate. Satisfaction of a *set* also accounts for recursion through
//! the chase: `G |= Σ` iff the chase identifies nothing.

use crate::candidates::{candidate_pairs, norm, CandidateMode};
use crate::chase::{chase_reference, ChaseOrder};
use crate::keyset::CompiledKeySet;
use gk_graph::{EntityId, GraphView};
use gk_isomorph::{eval_pair, IdentityEq, MatchScope};

/// A witnessed key violation: two distinct entities the key identifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending pair (normalized).
    pub pair: (EntityId, EntityId),
    /// Index of the violated key in the compiled set.
    pub key: usize,
    /// Name of the violated key.
    pub key_name: String,
}

/// All single-key violations under node identity (`Eq0`).
///
/// `G |= Q(x)` for every key iff this is empty. Recursive keys are checked
/// against `Eq0` here; use [`set_violations`] for the chase-aware notion.
pub fn key_violations<V: GraphView>(g: &V, keys: &CompiledKeySet) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(a, b) in &candidate_pairs(g, keys, CandidateMode::TypePairs) {
        let t = g.entity_type(a);
        for &ki in keys.keys_on(t) {
            if eval_pair(
                g,
                &keys.keys[ki].pattern,
                a,
                b,
                &IdentityEq,
                MatchScope::whole_graph(),
            ) {
                out.push(Violation {
                    pair: norm(a, b),
                    key: ki,
                    key_name: keys.keys[ki].name.clone(),
                });
            }
        }
    }
    out.sort_by_key(|v| (v.pair, v.key));
    out
}

/// Does `G` satisfy the key set, i.e. does the chase identify nothing?
///
/// This is the set-level notion of Example 5: in `G1`, `art1`/`art2` only
/// becomes a violation *through* the mutual recursion with the album keys.
pub fn satisfies<V: GraphView>(g: &V, keys: &CompiledKeySet) -> bool {
    set_violations(g, keys).is_empty()
}

/// All pairs the chase identifies — the set-level violations (duplicates).
pub fn set_violations<V: GraphView>(g: &V, keys: &CompiledKeySet) -> Vec<(EntityId, EntityId)> {
    chase_reference(g, keys, ChaseOrder::Deterministic).identified_pairs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            "#,
        )
        .unwrap()
    }

    #[test]
    fn example5_violation_of_q2() {
        let g = g1();
        let keys = KeySet::parse(
            r#"
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(&g);
        let v = key_violations(&g, &keys);
        // Under Eq0 only Q2 is violated: Q3 needs identified albums.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].key_name, "Q2");

        // Set-level: recursion surfaces the artist duplicate too.
        assert!(!satisfies(&g, &keys));
        assert_eq!(set_violations(&g, &keys).len(), 2);
    }

    #[test]
    fn clean_graph_satisfies() {
        let g = parse_graph(
            r#"
            alb1:album name_of "A"
            alb1:album release_year "1996"
            alb2:album name_of "B"
            alb2:album release_year "1996"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse("key \"Q2\" album(x) { x -name_of-> n*; x -release_year-> y*; }")
            .unwrap()
            .compile(&g);
        assert!(key_violations(&g, &keys).is_empty());
        assert!(satisfies(&g, &keys));
    }

    #[test]
    fn example5_g2_violates_q4() {
        let g = parse_graph(
            r#"
            com1:company name_of   "AT&T"
            com2:company name_of   "AT&T"
            com3:company name_of   "SBC"
            com4:company name_of   "AT&T"
            com5:company name_of   "AT&T"
            com1:company parent_of com4:company
            com3:company parent_of com4:company
            com2:company parent_of com5:company
            com3:company parent_of com5:company
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(
            r#"
            key "Q4" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                q:company -parent_of-> x;
            }
            "#,
        )
        .unwrap()
        .compile(&g);
        let v = key_violations(&g, &keys);
        assert_eq!(v.len(), 1);
        let c4 = g.entity_named("com4").unwrap();
        let c5 = g.entity_named("com5").unwrap();
        assert_eq!(v[0].pair, norm(c4, c5));
    }
}
