//! The multi-threaded partitioned chase.
//!
//! [`chase_parallel`] computes exactly `chase(G, Σ)` on real OS threads:
//! candidate pairs are partitioned into shards by the entity hash of their
//! smaller endpoint ([`gk_graph::entity_shard`]), each worker advances a
//! **shard-local** [`EqRel`] (seeded from the global relation at the start
//! of the round), and the driver merges the shard logs back into the global
//! relation (the attributed form of [`EqRel::merge_from`]), iterating
//! rounds until a global fixpoint.
//!
//! Correctness rests on the paper's Proposition 1 (Church–Rosser): every
//! merge a worker applies is individually certified by a key under a valid
//! chase relation (the snapshot plus the worker's own certified merges), so
//! the interleaved execution is just *some* chasing sequence — and all
//! terminal chasing sequences produce the same result. The property suite
//! (`tests/properties.rs`) runs this argument as an executable oracle
//! against `chase_reference`, `em_mr` and `em_vc`.
//!
//! Two further properties keep the work bounded:
//!
//! * **Candidate reduction.** The engine defaults to value blocking
//!   (`CandidateMode::Blocked`): a key with a value attribute on its anchor
//!   can only identify pairs *sharing* that value, and value equality is
//!   independent of `Eq`, so blocked-out pairs can never be identified in
//!   any round. Keys without a value anchor fall back to the full type
//!   cross-product, so nothing is lost.
//! * **Dependency wake-up instead of re-scans.** The sequential reference
//!   chase re-evaluates every open pair each round. Here a pair that fails
//!   is re-evaluated only when it might newly fire: a new firing must bind
//!   a recursive `EqEntity` slot to a non-identity pair that `Eq` did not
//!   hold at the last evaluation (with identity bindings only, the same
//!   witness would already have matched), and by Proposition 9 any such
//!   binding appears in the pair's *pairing relation*. Workers therefore
//!   extract the concrete dependency pairs of each fresh failure
//!   ([`Pairing::dependency_pairs`], scoped to the d-neighborhoods), and
//!   the driver watches them against the global closure — firing a watch
//!   wakes exactly its dependents, the entity-dependency frontier of §4.2
//!   in resident form. Failures on types without a pairable recursive key
//!   are dropped outright: no future `Eq` can change their verdict.
//!
//! Within a round, a worker evaluates later pairs under its *local*
//! relation, so intra-shard cascades (e.g. an artist pair enabled by an
//! album pair in the same shard) resolve without waiting for the round
//! barrier; cross-shard cascades cost one extra round, resolved through the
//! watch list exactly like the MapReduce driver's dependency rounds.

use crate::candidates::{candidate_pairs, norm, CandidateMode};
use crate::chase::{chase_reference_traced, shuffle, ChaseOrder, ChaseResult, ChaseStep};
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use gk_graph::{entity_shard, EntityId, GraphView};
use gk_isomorph::{eval_pair, pairing_at, MatchScope};
use gk_metrics::trace::Span;
use rustc_hash::{FxHashMap, FxHashSet};

/// Tuning knobs for [`chase_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelOpts {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Candidate-pair attempt order (the result is order-independent).
    pub order: ChaseOrder,
    /// How the candidate set `L` is enumerated. Defaults to value blocking,
    /// which is sound under any `Eq` (see module docs); `TypePairs` scans
    /// the same universe as `chase_reference`.
    pub mode: CandidateMode,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        ParallelOpts {
            threads: 0,
            order: ChaseOrder::Deterministic,
            mode: CandidateMode::Blocked,
        }
    }
}

impl ParallelOpts {
    /// Opts running on `threads` workers (0 = one per core).
    pub fn with_threads(threads: usize) -> Self {
        ParallelOpts {
            threads,
            ..Default::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A normalized candidate pair.
type Pair = (EntityId, EntityId);

/// What one worker produced in one round.
struct ShardOut {
    /// Steps for the merges beyond the snapshot, in application order.
    steps: Vec<ChaseStep>,
    /// Fresh failures with their dependency pairs: the pair can only newly
    /// fire once one of the dependencies enters the closure.
    watches: Vec<(Pair, Vec<Pair>)>,
    /// Key evaluations performed.
    iso_checks: u64,
    /// True when the round ran inline on the global relation: its steps are
    /// already applied and must not be replayed.
    applied_globally: bool,
}

/// The relation a round evaluates against: worker shards clone an immutable
/// snapshot; a small inline round mutates the global relation directly and
/// skips the O(n) clone.
enum RoundEq<'a> {
    Snapshot(&'a EqRel),
    Global(&'a mut EqRel),
}

/// Runs the partitioned multi-threaded chase to the global fixpoint.
///
/// Produces the same terminal `Eq` as [`chase_reference`] (Church–Rosser);
/// `steps` records the globally applied merges with their certifying keys,
/// so proof generation and `EXPLAIN` work unchanged.
pub fn chase_parallel<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    opts: ParallelOpts,
) -> ChaseResult {
    chase_parallel_traced(g, keys, opts, &Span::disabled())
}

/// [`chase_parallel`] with per-request tracing: records an `enumerate`
/// child span plus one `round` child per barrier round, and under each
/// round one `worker` child per shard (counters: pairs examined, iso
/// checks, merges, watches registered) — the per-worker spans the driver
/// merges back into the request tree. With a disabled span this *is*
/// `chase_parallel`.
pub fn chase_parallel_traced<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    opts: ParallelOpts,
    span: &Span,
) -> ChaseResult {
    let threads = opts.effective_threads();
    let enum_span = span.child("enumerate");
    let mut open = candidate_pairs(g, keys, opts.mode);
    if let ChaseOrder::Shuffled(seed) = opts.order {
        shuffle(&mut open, seed);
    }
    enum_span.count("candidates", open.len() as u64);
    enum_span.finish();

    let candidates = open.len();
    let mut wake_ups = 0u64;
    let mut eq = EqRel::identity(g.num_entities());
    let mut steps: Vec<ChaseStep> = Vec::new();
    let mut rounds = 0usize;
    let mut iso_checks = 0u64;
    // Un-fired dependency pair -> dormant pairs waiting on it.
    let mut watch: FxHashMap<Pair, Vec<Pair>> = FxHashMap::default();
    let mut unfired: Vec<Pair> = Vec::new();
    // Round 1 extracts dependencies from failures; wake rounds re-evaluate
    // already-registered pairs and must not re-extract.
    let mut fresh = true;

    // Below this many open pairs a round runs inline on the driver against
    // the global relation: sharding would cost a thread spawn plus an O(n)
    // snapshot clone per shard to evaluate a handful of woken pairs.
    const INLINE_THRESHOLD: usize = 64;

    while !open.is_empty() {
        rounds += 1;
        let round_span = span.child("round");
        let applied_before = steps.len();
        let outs: Vec<ShardOut> = if threads <= 1 || open.len() <= INLINE_THRESHOLD {
            let pairs = std::mem::take(&mut open);
            let wspan = round_span.child("worker");
            vec![run_shard(
                g,
                keys,
                RoundEq::Global(&mut eq),
                pairs,
                fresh,
                wspan,
            )]
        } else {
            // Partition by owner entity; pairs anchored at one entity stay
            // on one worker. `drain` so the round consumes the open list.
            let mut shards: Vec<Vec<(EntityId, EntityId)>> = vec![Vec::new(); threads];
            for pr in open.drain(..) {
                shards[entity_shard(pr.0, threads)].push(pr);
            }
            shards.retain(|s| !s.is_empty());
            let snapshot = &eq;
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|shard| {
                        // Per-worker child spans: opened on the driver,
                        // filled on the worker thread, merged by Arc
                        // sharing when the scope joins.
                        let wspan = round_span.child("worker");
                        scope.spawn(move || {
                            run_shard(g, keys, RoundEq::Snapshot(snapshot), shard, fresh, wspan)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chase worker panicked"))
                    .collect()
            })
        };

        for out in outs {
            iso_checks += out.iso_checks;
            // Replay the shard's steps; a step subsumed by another shard's
            // closure is dropped from the global log (its pair is already
            // identified, so it is not a chase step of this sequence). The
            // inline path already applied its steps to the global relation,
            // so they are pushed as-is.
            for step in out.steps {
                if out.applied_globally || eq.union(step.pair.0, step.pair.1) {
                    steps.push(step);
                }
            }
            for (pair, deps) in out.watches {
                for dep in deps {
                    let slot = watch.entry(dep).or_insert_with(|| {
                        unfired.push(dep);
                        Vec::new()
                    });
                    slot.push(pair);
                }
            }
        }
        fresh = false;
        if steps.len() == applied_before {
            round_span.finish();
            break; // no certification under the final Eq: terminal
        }
        // Fire watches now inside the closure and wake their dependents.
        // Scanning the whole un-fired list (not just this round's step
        // endpoints) keeps the wake-up closure-complete: a union makes
        // (u, v) hold for *every* cross-class member pair.
        let mut woken: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        unfired.retain(|&(a, b)| {
            if eq.same(a, b) {
                if let Some(deps) = watch.remove(&(a, b)) {
                    woken.extend(deps);
                }
                false
            } else {
                true
            }
        });
        open = woken.into_iter().filter(|&(a, b)| !eq.same(a, b)).collect();
        open.sort_unstable(); // deterministic shard assignment
        wake_ups += open.len() as u64;
        round_span.count("wake_ups", open.len() as u64);
        round_span.finish();
    }

    ChaseResult {
        eq,
        steps,
        rounds,
        iso_checks,
        candidates,
        wake_ups,
    }
}

/// One worker's round: advance the round's relation (a local clone of the
/// snapshot, or the global relation itself for inline rounds) over the
/// shard's pairs; on fresh failures, extract dependency watches.
fn run_shard<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    round_eq: RoundEq<'_>,
    shard: Vec<(EntityId, EntityId)>,
    fresh: bool,
    span: Span,
) -> ShardOut {
    span.count("candidates", shard.len() as u64);
    let mut owned;
    let (local, applied_globally): (&mut EqRel, bool) = match round_eq {
        RoundEq::Snapshot(snapshot) => {
            owned = snapshot.clone();
            (&mut owned, false)
        }
        RoundEq::Global(eq) => (eq, true),
    };
    let mut steps = Vec::new();
    let mut watches = Vec::new();
    let mut iso_checks = 0u64;
    for (a, b) in shard {
        if local.same(a, b) {
            continue; // subsumed by closure; drop from future rounds
        }
        let t = g.entity_type(a);
        let mut hit = None;
        for &ki in keys.keys_on(t) {
            iso_checks += 1;
            if eval_pair(
                g,
                &keys.keys[ki].pattern,
                a,
                b,
                &*local,
                MatchScope::whole_graph(),
            ) {
                hit = Some(ki);
                break; // one certifying key suffices (§4.1)
            }
        }
        match hit {
            Some(ki) => {
                local.union(a, b);
                steps.push(ChaseStep {
                    pair: norm(a, b),
                    key: ki,
                });
            }
            None if fresh => {
                if let Some(deps) = failure_dependencies(g, keys, a, b) {
                    watches.push((norm(a, b), deps));
                }
            }
            None => {} // woken pair failed again: its other watches remain
        }
    }
    span.count("iso_checks", iso_checks);
    span.count("merges", steps.len() as u64);
    span.count("watches", watches.len() as u64);
    span.finish();
    ShardOut {
        steps,
        watches,
        iso_checks,
        applied_globally,
    }
}

/// The dependency pairs that could newly enable `(a, b)`, or `None` when no
/// future `Eq` can (no recursive key, not pairable, or dependencies empty —
/// then every recursive slot admits only identity bindings, so the verdict
/// under any larger `Eq` equals the one just computed).
pub(crate) fn failure_dependencies<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    a: EntityId,
    b: EntityId,
) -> Option<Vec<(EntityId, EntityId)>> {
    let t = g.entity_type(a);
    let mut deps: Vec<(EntityId, EntityId)> = Vec::new();
    for &ki in keys.keys_on(t) {
        let ck = &keys.keys[ki];
        if !ck.recursive {
            continue; // value/wildcard-only keys never consult Eq
        }
        // Unscoped pairing: any superset of the true d-neighborhood scope
        // is sound here (extra admissible pairs just add spurious watches),
        // and the anchor-seeded propagation stays pattern-local — cheaper
        // than materializing two value-hub-dense d-neighborhoods per pair.
        let p = pairing_at(g, &ck.pattern, a, b, None, None);
        if !p.pairable(&ck.pattern, a, b) {
            continue; // Prop. 9: unpairable under any Eq
        }
        deps.extend(p.dependency_pairs(&ck.pattern));
    }
    deps.sort_unstable();
    deps.dedup();
    deps.retain(|&dep| dep != norm(a, b)); // self-dependency cannot fire first
    if deps.is_empty() {
        None
    } else {
        Some(deps)
    }
}

/// Which engine computes (and re-computes) the resident `chase(G, Σ)`.
///
/// * `Reference` — every advance is a full sequential re-chase (baseline).
/// * `Incremental` — insert-only batches ride the monotone delta chase;
///   full (re)chases are sequential. The serving default.
/// * `Parallel` — like `Incremental` for inserts (the delta is strictly
///   less work than any full chase), but full chases — startup and the
///   deletion fallback — run [`chase_parallel`] on `threads` workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChaseEngine {
    /// Full sequential re-chase on every advance.
    Reference,
    /// Monotone delta chase for inserts; sequential full chases.
    #[default]
    Incremental,
    /// Monotone delta chase for inserts; partitioned multi-threaded full
    /// chases on `threads` workers (0 = one per core).
    Parallel {
        /// Worker threads for the full chases.
        threads: usize,
    },
}

impl ChaseEngine {
    /// Runs a full chase of `g` under this engine.
    pub fn full_chase<V: GraphView>(
        self,
        g: &V,
        keys: &CompiledKeySet,
        order: ChaseOrder,
    ) -> ChaseResult {
        self.full_chase_traced(g, keys, order, &Span::disabled())
    }

    /// [`full_chase`](Self::full_chase) recording child spans of `span`
    /// (see the `_traced` chase entry points).
    pub fn full_chase_traced<V: GraphView>(
        self,
        g: &V,
        keys: &CompiledKeySet,
        order: ChaseOrder,
        span: &Span,
    ) -> ChaseResult {
        match self {
            ChaseEngine::Reference | ChaseEngine::Incremental => {
                chase_reference_traced(g, keys, order, span)
            }
            ChaseEngine::Parallel { threads } => chase_parallel_traced(
                g,
                keys,
                ParallelOpts {
                    threads,
                    order,
                    ..Default::default()
                },
                span,
            ),
        }
    }

    /// True iff insert-only batches may use the monotone delta chase.
    pub fn inserts_incrementally(self) -> bool {
        !matches!(self, ChaseEngine::Reference)
    }

    /// Worker threads used for full chases (1 for the sequential engines;
    /// resolves `Parallel { threads: 0 }` to the core count, the same
    /// policy as [`ParallelOpts`]).
    pub fn threads(self) -> usize {
        match self {
            ChaseEngine::Reference | ChaseEngine::Incremental => 1,
            ChaseEngine::Parallel { threads } => {
                ParallelOpts::with_threads(threads).effective_threads()
            }
        }
    }

    /// The protocol / CLI name (`reference`, `incremental`, `parallel`).
    pub fn name(self) -> &'static str {
        match self {
            ChaseEngine::Reference => "reference",
            ChaseEngine::Incremental => "incremental",
            ChaseEngine::Parallel { .. } => "parallel",
        }
    }

    /// Parses a protocol / CLI name; `threads` configures the parallel
    /// engine (ignored by the sequential ones).
    pub fn parse(name: &str, threads: usize) -> Result<Self, String> {
        match name {
            "reference" => Ok(ChaseEngine::Reference),
            "incremental" => Ok(ChaseEngine::Incremental),
            "parallel" => Ok(ChaseEngine::Parallel { threads }),
            other => Err(format!(
                "unknown engine {other:?} (expected reference|incremental|parallel)"
            )),
        }
    }
}

impl std::fmt::Display for ChaseEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase_reference;
    use crate::keyset::KeySet;
    use gk_graph::parse_graph;
    use gk_graph::Graph;

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            alb3:album  name_of       "Anthology 2"
            alb3:album  recorded_by   art3:artist
            art3:artist name_of       "John Farnham"
            "#,
        )
        .unwrap()
    }

    fn sigma1(g: &Graph) -> CompiledKeySet {
        KeySet::parse(
            r#"
            key "Q1" album(x) { x -name_of-> n*; x -recorded_by-> a:artist; }
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
            "#,
        )
        .unwrap()
        .compile(g)
    }

    fn both_modes(threads: usize) -> [ParallelOpts; 2] {
        [
            ParallelOpts::with_threads(threads),
            ParallelOpts {
                threads,
                mode: CandidateMode::TypePairs,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn matches_reference_on_paper_graph() {
        let g = g1();
        let keys = sigma1(&g);
        let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic)
            .eq
            .classes();
        for threads in [1usize, 2, 3, 8] {
            for opts in both_modes(threads) {
                let r = chase_parallel(&g, &keys, opts);
                assert_eq!(r.eq.classes(), expected, "threads={threads} {opts:?}");
            }
        }
    }

    #[test]
    fn recursive_cascade_reaches_fixpoint() {
        // Q3 (artists) depends on Q2 (albums): the parallel chase must keep
        // firing dependency watches until the cascade lands, wherever the
        // shards cut.
        let g = g1();
        let keys = sigma1(&g);
        let r = chase_parallel(&g, &keys, ParallelOpts::with_threads(4));
        let e = |n: &str| g.entity_named(n).unwrap();
        assert!(r.eq.same(e("alb1"), e("alb2")));
        assert!(r.eq.same(e("art1"), e("art2")));
        assert!(!r.eq.same(e("alb1"), e("alb3")));
    }

    #[test]
    fn mutual_recursion_through_companies() {
        // G2/Σ2 of Example 7: Q4/Q5 depend on wildcard parents and each
        // other's identifications.
        let g = parse_graph(
            r#"
            com0:company name_of   "AT&T"
            com1:company name_of   "AT&T"
            com2:company name_of   "AT&T"
            com3:company name_of   "SBC"
            com4:company name_of   "AT&T"
            com5:company name_of   "AT&T"
            com0:company parent_of com1:company
            com0:company parent_of com2:company
            com0:company parent_of com3:company
            com1:company parent_of com4:company
            com2:company parent_of com5:company
            com3:company parent_of com4:company
            com3:company parent_of com5:company
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(
            r#"
            key "Q4" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                q:company -parent_of-> x;
            }
            key "Q5" company(x) {
                x -name_of-> n*;
                ~p:company -name_of-> n*;
                ~p:company -parent_of-> x;
                ~p:company -parent_of-> d:company;
            }
            "#,
        )
        .unwrap()
        .compile(&g);
        let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic)
            .eq
            .classes();
        for threads in [1usize, 2, 4] {
            for opts in both_modes(threads) {
                let r = chase_parallel(&g, &keys, opts);
                assert_eq!(r.eq.classes(), expected, "threads={threads} {opts:?}");
            }
        }
    }

    #[test]
    fn steps_cite_certifying_keys() {
        let g = g1();
        let keys = sigma1(&g);
        let r = chase_parallel(&g, &keys, ParallelOpts::with_threads(2));
        assert_eq!(r.steps.len(), r.eq.merges().len());
        for s in &r.steps {
            assert!(s.key < keys.keys.len());
            assert!(r.eq.same(s.pair.0, s.pair.1));
        }
    }

    #[test]
    fn shuffled_order_is_equivalent() {
        let g = g1();
        let keys = sigma1(&g);
        let base = chase_parallel(&g, &keys, ParallelOpts::with_threads(3))
            .eq
            .classes();
        for seed in 0..5 {
            let opts = ParallelOpts {
                threads: 3,
                order: ChaseOrder::Shuffled(seed),
                ..Default::default()
            };
            assert_eq!(chase_parallel(&g, &keys, opts).eq.classes(), base);
        }
    }

    #[test]
    fn dependency_wakeup_avoids_rescans() {
        // The value-based album pairs fail exactly once; the recursive
        // artist pairs are evaluated once fresh and once woken. No pair is
        // re-scanned beyond that, so the check count is far below the
        // reference's rounds × open-pairs.
        let g = g1();
        let keys = sigma1(&g);
        let reference = chase_reference(&g, &keys, ChaseOrder::Deterministic);
        let r = chase_parallel(
            &g,
            &keys,
            ParallelOpts {
                threads: 2,
                mode: CandidateMode::TypePairs,
                ..Default::default()
            },
        );
        assert_eq!(r.eq.classes(), reference.eq.classes());
        assert!(
            r.iso_checks <= reference.iso_checks,
            "parallel {} > reference {}",
            r.iso_checks,
            reference.iso_checks
        );
    }

    #[test]
    fn empty_keys_identify_nothing() {
        let g = g1();
        let keys = KeySet::parse("").unwrap().compile(&g);
        let r = chase_parallel(&g, &keys, ParallelOpts::with_threads(4));
        assert!(r.eq.classes().is_empty());
        assert_eq!(r.iso_checks, 0);
    }

    #[test]
    fn engine_parsing_round_trips() {
        assert_eq!(
            ChaseEngine::parse("parallel", 4).unwrap(),
            ChaseEngine::Parallel { threads: 4 }
        );
        assert_eq!(
            ChaseEngine::parse("reference", 4).unwrap(),
            ChaseEngine::Reference
        );
        assert_eq!(
            ChaseEngine::parse("incremental", 0).unwrap(),
            ChaseEngine::default()
        );
        assert!(ChaseEngine::parse("warp", 1).is_err());
        for e in [
            ChaseEngine::Reference,
            ChaseEngine::Incremental,
            ChaseEngine::Parallel { threads: 2 },
        ] {
            assert_eq!(
                ChaseEngine::parse(e.name(), e.threads()).unwrap().name(),
                e.name()
            );
        }
    }

    #[test]
    fn engine_dispatch_agrees() {
        let g = g1();
        let keys = sigma1(&g);
        let expected = ChaseEngine::Reference
            .full_chase(&g, &keys, ChaseOrder::Deterministic)
            .eq
            .classes();
        for engine in [
            ChaseEngine::Incremental,
            ChaseEngine::Parallel { threads: 2 },
            ChaseEngine::Parallel { threads: 0 },
        ] {
            let r = engine.full_chase(&g, &keys, ChaseOrder::Deterministic);
            assert_eq!(r.eq.classes(), expected, "{engine}");
        }
        assert!(!ChaseEngine::Reference.inserts_incrementally());
        assert!(ChaseEngine::default().inserts_incrementally());
        assert!(ChaseEngine::Parallel { threads: 0 }.threads() >= 1);
    }
}
