//! Incremental entity matching after graph updates.
//!
//! Keys are *monotone*: patterns are positive, so adding triples can only
//! add matches, and `chase(G′, Σ) ⊇ chase(G, Σ)` whenever `G′ ⊇ G`. A
//! previous result therefore remains valid after insert-only updates, and
//! only entities near the new triples can seed *new* identifications:
//!
//! * the **first** new chase step's witness must use a new triple (with
//!   only old triples and the old terminal `Eq`, the old chase would
//!   already have applied it), and a witness anchored at `e` stays within
//!   `d` hops of `e` — so initial candidates have an endpoint within `d`
//!   of a touched entity;
//! * every **subsequent** step either does the same or uses a freshly
//!   identified pair `(a, b)` in a recursive slot — in which case its
//!   anchors lie within `d` of `a` and `b`; the worklist below wakes
//!   exactly those pairs.
//!
//! Deletions are *not* monotone (they can invalidate prior merges); for
//! them, fall back to a full re-chase.
//!
//! Entity ids must be stable across the update — extend graphs with
//! [`GraphBuilder::from_graph`](gk_graph::GraphBuilder::from_graph).

use crate::candidates::norm;
use crate::chase::{ChaseResult, ChaseStep};
use crate::eqrel::EqRel;
use crate::keyset::CompiledKeySet;
use gk_graph::{d_neighborhood, EntityId, GraphView, NodeId};
use gk_isomorph::{eval_pair, MatchScope};
use gk_metrics::trace::Span;
use rustc_hash::FxHashSet;

/// Continues a chase on an extended graph.
///
/// * `g` — the updated graph (must contain every triple of the graph the
///   previous result was computed on, with unchanged entity ids);
/// * `prev` — the terminal `Eq` of the previous chase;
/// * `touched` — entities incident to added triples (subjects, entity
///   objects, and subjects of new value attributes).
///
/// Returns the delta chase: its `eq` is the *full* updated relation
/// (previous merges included); its `steps` are only the new ones.
pub fn chase_incremental<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    prev: &EqRel,
    touched: &[EntityId],
) -> ChaseResult {
    chase_incremental_traced(g, keys, prev, touched, &Span::disabled())
}

/// [`chase_incremental`] with per-request tracing: records a `seed`
/// child span for the initial frontier and one `round` child per
/// worklist sweep (counters: pairs examined, iso checks, merges,
/// wake-ups fired). With a disabled span this *is* `chase_incremental`.
pub fn chase_incremental_traced<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    prev: &EqRel,
    touched: &[EntityId],
    span: &Span,
) -> ChaseResult {
    // Seed Eq with the previous result (monotonicity keeps it valid):
    // replaying the merge log reproduces the closure.
    let seed_span = span.child("seed");
    let mut eq = EqRel::identity(g.num_entities());
    eq.absorb(prev.merges());
    // Initial frontier: keyed-type pairs with an endpoint near a touched
    // entity.
    let mut pending: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
    for &t in touched {
        extend_candidates_around(g, keys, t, None, &mut pending);
    }
    seed_span.count("candidates", pending.len() as u64);
    seed_span.finish();

    let candidates = pending.len();
    let mut wake_ups = 0u64;
    let mut steps = Vec::new();
    let mut rounds = 0usize;
    let mut iso_checks = 0u64;
    loop {
        rounds += 1;
        let round_span = span.child("round");
        let round_iso0 = iso_checks;
        let round_merges0 = steps.len();
        round_span.count("candidates", pending.len() as u64);
        let mut newly: Vec<(EntityId, EntityId)> = Vec::new();
        let mut still_open = FxHashSet::default();
        for &(a, b) in &pending {
            if eq.same(a, b) {
                continue;
            }
            let ty = g.entity_type(a);
            let mut hit = None;
            for &ki in keys.keys_on(ty) {
                iso_checks += 1;
                if eval_pair(
                    g,
                    &keys.keys[ki].pattern,
                    a,
                    b,
                    &eq,
                    MatchScope::whole_graph(),
                ) {
                    hit = Some(ki);
                    break;
                }
            }
            match hit {
                Some(ki) => {
                    eq.union(a, b);
                    steps.push(ChaseStep {
                        pair: norm(a, b),
                        key: ki,
                    });
                    newly.push((a, b));
                }
                None => {
                    still_open.insert((a, b));
                }
            }
        }
        round_span.count("iso_checks", iso_checks - round_iso0);
        round_span.count("merges", (steps.len() - round_merges0) as u64);
        if newly.is_empty() {
            round_span.finish();
            break;
        }
        // Wake pairs whose witnesses could use the new identifications:
        // anchors within d of each side of a new pair.
        pending = still_open;
        let before_wake = pending.len();
        for (a, b) in newly {
            extend_candidates_around(g, keys, a, Some(b), &mut pending);
        }
        let fired = (pending.len() - before_wake) as u64;
        wake_ups += fired;
        round_span.count("wake_ups", fired);
        round_span.finish();
    }

    ChaseResult {
        eq,
        steps,
        rounds,
        iso_checks,
        candidates,
        wake_ups,
    }
}

/// Adds keyed-type pairs around `a` (and, when `other` is given, pairs
/// pairing `ball(a)` with `ball(other)`) to the pending set.
fn extend_candidates_around<V: GraphView>(
    g: &V,
    keys: &CompiledKeySet,
    a: EntityId,
    other: Option<EntityId>,
    pending: &mut FxHashSet<(EntityId, EntityId)>,
) {
    let ball = |e: EntityId| -> Vec<EntityId> {
        let d_max = keys
            .keyed_types()
            .map(|t| keys.radius_of_type(t))
            .max()
            .unwrap_or(0);
        d_neighborhood(g, e, d_max)
            .iter()
            .filter_map(NodeId::as_entity)
            .filter(|&e| !keys.keys_on(g.entity_type(e)).is_empty())
            .collect()
    };
    match other {
        None => {
            // Pair every keyed entity near `a` with every same-type entity
            // of the graph (one side suffices: the witness near the new
            // triple is anchored here).
            for e1 in ball(a) {
                for e2 in g.entities_of_type(g.entity_type(e1)) {
                    if e1 != e2 {
                        pending.insert(norm(e1, e2));
                    }
                }
            }
        }
        Some(b) => {
            // A new identification (a, b): candidate anchors sit within d
            // of a on one side and within d of b on the other.
            let ball_b = ball(b);
            for e1 in ball(a) {
                for &e2 in &ball_b {
                    if e1 != e2 && g.entity_type(e1) == g.entity_type(e2) {
                        pending.insert(norm(e1, e2));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase_reference, ChaseOrder};
    use crate::keyset::KeySet;
    use gk_graph::Graph;
    use gk_graph::{parse_graph, GraphBuilder};

    const KEYS: &str = r#"
        key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
        key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
    "#;

    fn base_graph() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            alb2:album  recorded_by   art2:artist
            art2:artist name_of       "The Beatles"
            "#,
        )
        .unwrap()
    }

    #[test]
    fn new_triples_cascade_through_recursion() {
        // Initially nothing matches (no release years). Adding the years
        // triggers Q2 and then, through recursion, Q3.
        let g = base_graph();
        let ks = KeySet::parse(KEYS).unwrap();
        let prev = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic);
        assert!(prev.identified_pairs().is_empty());

        let mut b = GraphBuilder::from_graph(&g);
        let alb1 = g.entity_named("alb1").unwrap();
        let alb2 = g.entity_named("alb2").unwrap();
        b.attr(alb1, "release_year", "1996");
        b.attr(alb2, "release_year", "1996");
        let g2 = b.freeze();
        let keys2 = ks.compile(&g2);

        let inc = chase_incremental(&g2, &keys2, &prev.eq, &[alb1, alb2]);
        let full = chase_reference(&g2, &keys2, ChaseOrder::Deterministic);
        assert_eq!(inc.identified_pairs(), full.identified_pairs());
        assert_eq!(inc.identified_pairs().len(), 2, "albums + artists");
        assert_eq!(inc.steps.len(), 2, "only the delta steps are reported");
    }

    #[test]
    fn irrelevant_updates_do_no_matching_work() {
        let g = parse_graph(
            r#"
            alb1:album name_of "A"
            alb1:album release_year "1"
            alb2:album name_of "B"
            alb2:album release_year "2"
            "#,
        )
        .unwrap();
        let ks = KeySet::parse(KEYS).unwrap();
        let prev = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic);

        // Add an entity of an un-keyed type, far from everything.
        let mut b = GraphBuilder::from_graph(&g);
        let loner = b.entity("loner", "misc");
        b.attr(loner, "note", "hi");
        let g2 = b.freeze();
        let keys2 = ks.compile(&g2);
        let inc = chase_incremental(&g2, &keys2, &prev.eq, &[loner]);
        assert!(inc.identified_pairs().is_empty());
        assert!(inc.steps.is_empty());
    }

    #[test]
    fn previous_merges_are_preserved() {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album release_year "2000"
            a2:album name_of "X"
            a2:album release_year "2000"
            "#,
        )
        .unwrap();
        let ks = KeySet::parse(KEYS).unwrap();
        let prev = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic);
        assert_eq!(prev.identified_pairs().len(), 1);

        // An unrelated update must not lose the old merge.
        let mut b = GraphBuilder::from_graph(&g);
        let a3 = b.entity("a3", "album");
        b.attr(a3, "name_of", "Z");
        let g2 = b.freeze();
        let keys2 = ks.compile(&g2);
        let inc = chase_incremental(&g2, &keys2, &prev.eq, &[a3]);
        assert_eq!(inc.identified_pairs(), prev.identified_pairs());
        assert!(inc.steps.is_empty());
    }

    #[test]
    fn incremental_equals_full_rechase_on_random_updates() {
        use gk_datagen_free_shuffle::*;
        // A deterministic mini-fuzz: apply batches of random attribute
        // copies and compare incremental vs full after each batch.
        let mut g = parse_graph(
            r#"
            a0:album name_of "n0"
            a0:album release_year "y0"
            a1:album name_of "n1"
            a1:album release_year "y1"
            a2:album name_of "n2"
            a2:album release_year "y2"
            a3:album name_of "n3"
            a3:album release_year "y3"
            "#,
        )
        .unwrap();
        let ks = KeySet::parse(KEYS).unwrap();
        let mut prev = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic).eq;
        let mut rng = 0x12345u64;
        for step in 0..12 {
            // Copy one entity's name/year onto another: may create a dup.
            let i = (next(&mut rng) % 4) as u32;
            let j = (next(&mut rng) % 4) as u32;
            if i == j {
                continue;
            }
            let src = g.entity_named(&format!("a{i}")).unwrap();
            let dst = g.entity_named(&format!("a{j}")).unwrap();
            let mut b = GraphBuilder::from_graph(&g);
            let (name, year) = {
                let np = g.pred("name_of").unwrap();
                let yp = g.pred("release_year").unwrap();
                let val = |p| {
                    g.out_with(src, p)
                        .iter()
                        .find_map(|&(_, o)| o.as_value())
                        .map(|v| g.value_str(v).to_owned())
                        .unwrap()
                };
                (val(np), val(yp))
            };
            b.attr(dst, "name_of", &name);
            b.attr(dst, "release_year", &year);
            let g2 = b.freeze();
            let keys2 = ks.compile(&g2);
            let inc = chase_incremental(&g2, &keys2, &prev, &[dst]);
            let full = chase_reference(&g2, &keys2, ChaseOrder::Deterministic);
            assert_eq!(
                inc.identified_pairs(),
                full.identified_pairs(),
                "divergence at update {step}"
            );
            prev = inc.eq;
            g = g2;
        }
    }

    /// Tiny deterministic RNG for the mini-fuzz above.
    mod gk_datagen_free_shuffle {
        pub fn next(s: &mut u64) -> u64 {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *s >> 33
        }
    }
}
