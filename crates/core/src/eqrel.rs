//! The equivalence relation `Eq` maintained by the chase (§3.1).
//!
//! `Eq` starts as the node-identity relation `Eq0 = {(e, e)}` and grows by
//! chase steps: when a key identifies `(e1, e2)`, `Eq` becomes the
//! equivalence closure of `Eq ∪ {(e1, e2)}`. A union–find with union by
//! rank represents exactly that closure; `find` deliberately avoids path
//! compression so that concurrent readers (the parallel matchers) can query
//! through a shared reference.

use gk_graph::EntityId;
use gk_isomorph::EqOracle;

/// Union–find over entity ids: the chase's `Eq`.
#[derive(Clone, Debug)]
pub struct EqRel {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Non-trivial merges in application order — the chase steps.
    merges: Vec<(EntityId, EntityId)>,
}

impl EqRel {
    /// The identity relation `Eq0` over `n` entities.
    pub fn identity(n: usize) -> Self {
        EqRel {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            merges: Vec::new(),
        }
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True iff the relation covers no entities.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Class representative of `e`. No path compression: works on `&self`.
    pub fn find(&self, e: EntityId) -> EntityId {
        let mut x = e.0;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return EntityId(x);
            }
            x = p;
        }
    }

    /// Are `a` and `b` identified (`(a, b) ∈ Eq`)?
    pub fn same(&self, a: EntityId, b: EntityId) -> bool {
        a == b || self.find(a) == self.find(b)
    }

    /// One chase step: add `(a, b)` and close under equivalence.
    /// Returns `true` iff the relation actually grew.
    pub fn union(&mut self, a: EntityId, b: EntityId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra.idx()] >= self.rank[rb.idx()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo.idx()] = hi.0;
        if self.rank[hi.idx()] == self.rank[lo.idx()] {
            self.rank[hi.idx()] += 1;
        }
        self.merges.push((a, b));
        true
    }

    /// The non-trivial merges, in the order they were applied.
    pub fn merges(&self) -> &[(EntityId, EntityId)] {
        &self.merges
    }

    /// Non-trivial equivalence classes (size ≥ 2), each sorted, in
    /// ascending order of their smallest member. This is the shape of
    /// `chase(G, Σ)`'s output.
    pub fn classes(&self) -> Vec<Vec<EntityId>> {
        let mut groups: rustc_hash::FxHashMap<EntityId, Vec<EntityId>> =
            rustc_hash::FxHashMap::default();
        for i in 0..self.parent.len() as u32 {
            let e = EntityId(i);
            groups.entry(self.find(e)).or_default().push(e);
        }
        let mut out: Vec<Vec<EntityId>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }

    /// All identified pairs `(a, b)` with `a < b` — the full closure, i.e.
    /// the pairs the paper's transitive-closure rule would emit.
    pub fn identified_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut out = Vec::new();
        for class in self.classes() {
            for (i, &a) in class.iter().enumerate() {
                for &b in &class[i + 1..] {
                    out.push((a, b));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of identified pairs in the closure: `Σ |C|·(|C|−1)/2`.
    /// The "confirmed matches" of Table 2.
    pub fn num_identified_pairs(&self) -> usize {
        self.classes()
            .iter()
            .map(|c| c.len() * (c.len() - 1) / 2)
            .sum()
    }
}

impl EqOracle for EqRel {
    fn same(&self, a: EntityId, b: EntityId) -> bool {
        EqRel::same(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn identity_has_no_pairs() {
        let eq = EqRel::identity(5);
        assert_eq!(eq.len(), 5);
        assert!(eq.same(e(2), e(2)));
        assert!(!eq.same(e(1), e(2)));
        assert_eq!(eq.num_identified_pairs(), 0);
        assert!(eq.classes().is_empty());
    }

    #[test]
    fn union_identifies() {
        let mut eq = EqRel::identity(4);
        assert!(eq.union(e(0), e(1)));
        assert!(eq.same(e(0), e(1)));
        assert!(!eq.same(e(0), e(2)));
        assert!(!eq.union(e(1), e(0)), "already identified");
    }

    #[test]
    fn closure_is_transitive() {
        let mut eq = EqRel::identity(5);
        eq.union(e(0), e(1));
        eq.union(e(1), e(2));
        assert!(eq.same(e(0), e(2)));
        assert_eq!(eq.num_identified_pairs(), 3); // {0,1,2} -> 3 pairs
        assert_eq!(
            eq.identified_pairs(),
            vec![(e(0), e(1)), (e(0), e(2)), (e(1), e(2))]
        );
    }

    #[test]
    fn classes_are_sorted_and_nontrivial() {
        let mut eq = EqRel::identity(6);
        eq.union(e(4), e(5));
        eq.union(e(0), e(2));
        let classes = eq.classes();
        assert_eq!(classes, vec![vec![e(0), e(2)], vec![e(4), e(5)]]);
    }

    #[test]
    fn merges_record_chase_steps_in_order() {
        let mut eq = EqRel::identity(4);
        eq.union(e(2), e(3));
        eq.union(e(0), e(1));
        eq.union(e(1), e(0)); // no-op, not recorded
        assert_eq!(eq.merges(), &[(e(2), e(3)), (e(0), e(1))]);
    }

    #[test]
    fn merging_two_classes_counts_all_cross_pairs() {
        let mut eq = EqRel::identity(6);
        eq.union(e(0), e(1));
        eq.union(e(2), e(3));
        assert_eq!(eq.num_identified_pairs(), 2);
        eq.union(e(1), e(2)); // merge {0,1} with {2,3}
        assert_eq!(eq.num_identified_pairs(), 6); // C(4,2)
    }

    #[test]
    fn eq_oracle_impl_delegates() {
        let mut eq = EqRel::identity(3);
        eq.union(e(0), e(2));
        let oracle: &dyn EqOracle = &eq;
        assert!(oracle.same(e(0), e(2)));
        assert!(!oracle.same(e(0), e(1)));
    }

    #[test]
    fn large_union_chain_stays_shallow() {
        // Union-by-rank keeps find cheap even without compression.
        let n = 10_000;
        let mut eq = EqRel::identity(n);
        for i in 0..(n as u32 - 1) {
            eq.union(e(i), e(i + 1));
        }
        assert!(eq.same(e(0), e(n as u32 - 1)));
        assert_eq!(eq.classes().len(), 1);
    }
}
