//! The equivalence relation `Eq` maintained by the chase (§3.1).
//!
//! `Eq` starts as the node-identity relation `Eq0 = {(e, e)}` and grows by
//! chase steps: when a key identifies `(e1, e2)`, `Eq` becomes the
//! equivalence closure of `Eq ∪ {(e1, e2)}`. A union–find with union by
//! rank represents exactly that closure. Parent pointers are stored in
//! relaxed atomics so that [`find`](EqRel::find) can perform **path
//! halving through a shared reference**: compression only ever rewrites a
//! parent pointer to a strict ancestor, so concurrent readers (the parallel
//! matchers, which share one `Eq` snapshot across worker threads) always
//! traverse a valid, ever-shorter chain to the same root.

use gk_graph::EntityId;
use gk_isomorph::EqOracle;
use std::sync::atomic::{AtomicU32, Ordering};

/// Union–find over entity ids: the chase's `Eq`.
#[derive(Debug)]
pub struct EqRel {
    /// Parent pointers; `parent[x] == x` at a class root. Atomic so `find`
    /// can compress paths on `&self` (see module docs).
    parent: Vec<AtomicU32>,
    rank: Vec<u8>,
    /// Class sizes, valid at roots (`size[find(e)]` is `|class(e)|`).
    size: Vec<u32>,
    /// Identified pairs in the closure, maintained incrementally: merging
    /// classes of sizes `s1` and `s2` adds `s1·s2` cross pairs.
    num_pairs: usize,
    /// Non-trivial merges in application order — the chase steps.
    merges: Vec<(EntityId, EntityId)>,
}

impl Clone for EqRel {
    fn clone(&self) -> Self {
        EqRel {
            parent: self
                .parent
                .iter()
                .map(|p| AtomicU32::new(p.load(Ordering::Relaxed)))
                .collect(),
            rank: self.rank.clone(),
            size: self.size.clone(),
            num_pairs: self.num_pairs,
            merges: self.merges.clone(),
        }
    }
}

impl EqRel {
    /// The identity relation `Eq0` over `n` entities.
    pub fn identity(n: usize) -> Self {
        EqRel {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            rank: vec![0; n],
            size: vec![1; n],
            num_pairs: 0,
            merges: Vec::new(),
        }
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True iff the relation covers no entities.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Class representative of `e`. Compresses the traversed path by
    /// halving; safe on `&self` because every rewrite points a node at one
    /// of its ancestors (see module docs).
    pub fn find(&self, e: EntityId) -> EntityId {
        let mut x = e.0;
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return EntityId(x);
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp == p {
                return EntityId(p);
            }
            // Path halving: skip x's parent. gp is an ancestor of x, so a
            // concurrent reader that observes the new pointer still reaches
            // the same root.
            self.parent[x as usize].store(gp, Ordering::Relaxed);
            x = gp;
        }
    }

    /// Are `a` and `b` identified (`(a, b) ∈ Eq`)?
    pub fn same(&self, a: EntityId, b: EntityId) -> bool {
        a == b || self.find(a) == self.find(b)
    }

    /// One chase step: add `(a, b)` and close under equivalence.
    /// Returns `true` iff the relation actually grew.
    pub fn union(&mut self, a: EntityId, b: EntityId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra.idx()] >= self.rank[rb.idx()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo.idx()].store(hi.0, Ordering::Relaxed);
        if self.rank[hi.idx()] == self.rank[lo.idx()] {
            self.rank[hi.idx()] += 1;
        }
        // Every member of the old classes pairs with every member of the
        // other: the closure grows by exactly |C_a|·|C_b| pairs.
        self.num_pairs += self.size[hi.idx()] as usize * self.size[lo.idx()] as usize;
        self.size[hi.idx()] += self.size[lo.idx()];
        self.merges.push((a, b));
        true
    }

    /// Replays a slice of merge pairs into this relation, returning the
    /// number of unions that actually grew it. Since `Eq` is the closure of
    /// its merge log, absorbing another relation's log reproduces the
    /// closure of the union of both relations.
    pub fn absorb(&mut self, merges: &[(EntityId, EntityId)]) -> usize {
        let mut applied = 0;
        for &(a, b) in merges {
            if self.union(a, b) {
                applied += 1;
            }
        }
        applied
    }

    /// Folds `other` into `self`: afterwards `self` is the equivalence
    /// closure of `self ∪ other`. Returns the number of effective unions.
    ///
    /// This is the merge step of the partitioned parallel chase: each shard
    /// advances a local relation, and the driver absorbs the shard logs
    /// into the global one (the union–find closure subsumes the explicit
    /// transitive-closure joins of the paper's `ReduceEM`).
    pub fn merge_from(&mut self, other: &EqRel) -> usize {
        self.absorb(other.merges())
    }

    /// The non-trivial merges, in the order they were applied.
    pub fn merges(&self) -> &[(EntityId, EntityId)] {
        &self.merges
    }

    /// Non-trivial equivalence classes (size ≥ 2), each sorted, in
    /// ascending order of their smallest member. This is the shape of
    /// `chase(G, Σ)`'s output.
    pub fn classes(&self) -> Vec<Vec<EntityId>> {
        // Every member of a size-≥2 class was the argument of some
        // effective union (by induction over the merge log), so scanning
        // the O(merges) endpoints — not all n entities — finds every class.
        let mut ents: Vec<EntityId> = self.merges.iter().flat_map(|&(a, b)| [a, b]).collect();
        ents.sort_unstable();
        ents.dedup();
        let mut groups: rustc_hash::FxHashMap<EntityId, Vec<EntityId>> =
            rustc_hash::FxHashMap::default();
        for e in ents {
            groups.entry(self.find(e)).or_default().push(e);
        }
        let mut out: Vec<Vec<EntityId>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }

    /// All identified pairs `(a, b)` with `a < b` — the full closure, i.e.
    /// the pairs the paper's transitive-closure rule would emit.
    pub fn identified_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut out = Vec::new();
        for class in self.classes() {
            for (i, &a) in class.iter().enumerate() {
                for &b in &class[i + 1..] {
                    out.push((a, b));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of identified pairs in the closure: `Σ |C|·(|C|−1)/2`.
    /// The "confirmed matches" of Table 2.
    pub fn num_identified_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Length of the parent chain from `e` to its root (0 at a root).
    /// Exposed for the compression invariant tests.
    #[doc(hidden)]
    pub fn depth_of(&self, e: EntityId) -> usize {
        let mut x = e.0;
        let mut depth = 0;
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return depth;
            }
            depth += 1;
            x = p;
        }
    }

    /// Rank of `e`'s current parent-chain root. Exposed for the invariant
    /// tests: ranks bound tree height even under compression.
    #[doc(hidden)]
    pub fn rank_of_root(&self, e: EntityId) -> u8 {
        self.rank[self.find(e).idx()]
    }
}

impl EqOracle for EqRel {
    fn same(&self, a: EntityId, b: EntityId) -> bool {
        EqRel::same(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn identity_has_no_pairs() {
        let eq = EqRel::identity(5);
        assert_eq!(eq.len(), 5);
        assert!(eq.same(e(2), e(2)));
        assert!(!eq.same(e(1), e(2)));
        assert_eq!(eq.num_identified_pairs(), 0);
        assert!(eq.classes().is_empty());
    }

    #[test]
    fn union_identifies() {
        let mut eq = EqRel::identity(4);
        assert!(eq.union(e(0), e(1)));
        assert!(eq.same(e(0), e(1)));
        assert!(!eq.same(e(0), e(2)));
        assert!(!eq.union(e(1), e(0)), "already identified");
    }

    #[test]
    fn closure_is_transitive() {
        let mut eq = EqRel::identity(5);
        eq.union(e(0), e(1));
        eq.union(e(1), e(2));
        assert!(eq.same(e(0), e(2)));
        assert_eq!(eq.num_identified_pairs(), 3); // {0,1,2} -> 3 pairs
        assert_eq!(
            eq.identified_pairs(),
            vec![(e(0), e(1)), (e(0), e(2)), (e(1), e(2))]
        );
    }

    #[test]
    fn classes_are_sorted_and_nontrivial() {
        let mut eq = EqRel::identity(6);
        eq.union(e(4), e(5));
        eq.union(e(0), e(2));
        let classes = eq.classes();
        assert_eq!(classes, vec![vec![e(0), e(2)], vec![e(4), e(5)]]);
    }

    #[test]
    fn merges_record_chase_steps_in_order() {
        let mut eq = EqRel::identity(4);
        eq.union(e(2), e(3));
        eq.union(e(0), e(1));
        eq.union(e(1), e(0)); // no-op, not recorded
        assert_eq!(eq.merges(), &[(e(2), e(3)), (e(0), e(1))]);
    }

    #[test]
    fn merging_two_classes_counts_all_cross_pairs() {
        let mut eq = EqRel::identity(6);
        eq.union(e(0), e(1));
        eq.union(e(2), e(3));
        assert_eq!(eq.num_identified_pairs(), 2);
        eq.union(e(1), e(2)); // merge {0,1} with {2,3}
        assert_eq!(eq.num_identified_pairs(), 6); // C(4,2)
    }

    #[test]
    fn eq_oracle_impl_delegates() {
        let mut eq = EqRel::identity(3);
        eq.union(e(0), e(2));
        let oracle: &dyn EqOracle = &eq;
        assert!(oracle.same(e(0), e(2)));
        assert!(!oracle.same(e(0), e(1)));
    }

    #[test]
    fn large_union_chain_stays_shallow() {
        // Union-by-rank keeps find cheap even before compression kicks in.
        let n = 10_000;
        let mut eq = EqRel::identity(n);
        for i in 0..(n as u32 - 1) {
            eq.union(e(i), e(i + 1));
        }
        assert!(eq.same(e(0), e(n as u32 - 1)));
        assert_eq!(eq.classes().len(), 1);
    }

    #[test]
    fn absorb_reproduces_closure() {
        let mut a = EqRel::identity(8);
        a.union(e(0), e(1));
        a.union(e(2), e(3));
        let mut b = EqRel::identity(8);
        b.union(e(1), e(2)); // bridges a's two classes
        b.union(e(4), e(5));
        let applied = a.merge_from(&b);
        assert_eq!(applied, 2);
        assert!(a.same(e(0), e(3)), "closure across both logs");
        assert!(a.same(e(4), e(5)));
        assert!(!a.same(e(0), e(4)));
        // Absorbing again is a no-op: Eq is already closed.
        assert_eq!(a.merge_from(&b), 0);
    }

    #[test]
    fn merge_from_is_commutative_on_classes() {
        let mut x = EqRel::identity(6);
        x.union(e(0), e(1));
        let mut y = EqRel::identity(6);
        y.union(e(1), e(2));
        y.union(e(3), e(4));
        let mut xy = x.clone();
        xy.merge_from(&y);
        let mut yx = y.clone();
        yx.merge_from(&x);
        assert_eq!(xy.classes(), yx.classes());
    }

    #[test]
    fn find_compresses_paths() {
        // Build a deliberate chain by absorbing rank information from
        // separate relations, then check that a find() shortens the chain
        // for subsequent traversals.
        let n = 64;
        let mut eq = EqRel::identity(n);
        for i in 0..(n as u32 - 1) {
            eq.union(e(i), e(i + 1));
        }
        let before: usize = (0..n as u32).map(|i| eq.depth_of(e(i))).sum();
        for i in 0..n as u32 {
            eq.find(e(i));
        }
        let after: usize = (0..n as u32).map(|i| eq.depth_of(e(i))).sum();
        assert!(after <= before, "compression never lengthens chains");
        // After halving every path, all depths are bounded by the rank.
        for i in 0..n as u32 {
            assert!(eq.depth_of(e(i)) <= eq.rank_of_root(e(i)) as usize);
        }
    }

    #[test]
    fn rank_bounds_height_under_compression() {
        // Random-ish unions: the rank of a root always upper-bounds the
        // length of any parent chain into it (union by rank invariant,
        // preserved by halving which only shortens chains).
        let mut eq = EqRel::identity(512);
        let mut s = 0xABCDu64;
        for _ in 0..2000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 33) % 512) as u32;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 33) % 512) as u32;
            eq.union(e(a), e(b));
        }
        for i in 0..512u32 {
            assert!(eq.depth_of(e(i)) <= eq.rank_of_root(e(i)) as usize);
        }
    }

    #[test]
    fn concurrent_finds_agree_with_sequential() {
        // Shared-reference finds from many threads: compression races are
        // benign — every thread sees the same representatives.
        let mut eq = EqRel::identity(1000);
        for i in 0..999u32 {
            if i % 3 != 0 {
                eq.union(e(i), e(i + 1));
            }
        }
        let expected: Vec<EntityId> = (0..1000u32).map(|i| eq.clone().find(e(i))).collect();
        let (eq, expected) = (&eq, &expected);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for i in 0..1000u32 {
                        assert_eq!(eq.find(e(i)), expected[i as usize]);
                    }
                });
            }
        });
    }

    #[test]
    fn clone_snapshots_compressed_state() {
        let mut eq = EqRel::identity(10);
        eq.union(e(0), e(1));
        eq.union(e(1), e(2));
        let snap = eq.clone();
        assert_eq!(snap.classes(), eq.classes());
        assert_eq!(snap.merges(), eq.merges());
    }
}
