//! Quickstart: define a graph, write keys, find duplicate entities.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use keys_for_graphs::prelude::*;

fn main() {
    // ---- 1. A small knowledge graph ------------------------------------
    // Two catalogue records describe the same album; a third album is a
    // different release with the same title.
    let g = parse_graph(
        r#"
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb3:album  name_of       "Anthology 2"
        alb3:album  release_year  "2005"   # remaster, different release
        "#,
    )
    .expect("valid graph text");
    println!("graph: {}", GraphStats::of(&g));

    // ---- 2. A key, in the textual DSL ----------------------------------
    // Q2 of the paper: an album is identified by its name AND release year.
    let keys = KeySet::parse(
        r#"
        key "Q2" album(x) {
            x -name_of-> n*;
            x -release_year-> y*;
        }
        "#,
    )
    .expect("valid key DSL");
    let compiled = keys.compile(&g);

    // ---- 3. Does the graph satisfy the key? ----------------------------
    if satisfies(&g, &compiled) {
        println!("no duplicates: G |= Σ");
        return;
    }
    for v in key_violations(&g, &compiled) {
        println!(
            "violation of {}: {} and {} are the same entity",
            v.key_name,
            g.entity_label(v.pair.0),
            g.entity_label(v.pair.1),
        );
    }

    // ---- 4. Entity matching (chase) with a parallel algorithm ----------
    let outcome = em_vc(&g, &compiled, 2, VcVariant::Opt { k: 4 });
    println!("\n{}", outcome.report);
    for (a, b) in outcome.identified_pairs() {
        println!(
            "identified: {} <=> {}",
            g.entity_label(a),
            g.entity_label(b)
        );
    }

    // The equivalence classes are the deduplicated entities.
    for class in outcome.eq.classes() {
        let names: Vec<String> = class.iter().map(|&e| g.entity_label(e)).collect();
        println!("entity cluster: {}", names.join(" = "));
    }
}
