//! Business knowledge bases: mergers and splits — the paper's Q4/Q5
//! (Example 1, business domain). A child company often carries its
//! parent's name (AT&T/SBC, 2005), so `name` alone is not a key; the keys
//! encode the parent/child *topology*, and the wildcard/entity-variable
//! distinction decides what must already be identified.
//!
//! ```text
//! cargo run --example company_merger
//! ```

use keys_for_graphs::prelude::*;

fn main() {
    // Fig. 2's G2: com0 ("AT&T") split into com1, com2 ("AT&T") and com3
    // ("SBC"); the post-merger company appears twice (com4, com5), each
    // recorded with one same-named parent and SBC.
    let g = parse_graph(
        r#"
        com0:company name_of   "AT&T"
        com1:company name_of   "AT&T"
        com2:company name_of   "AT&T"
        com3:company name_of   "SBC"
        com4:company name_of   "AT&T"
        com5:company name_of   "AT&T"
        com0:company parent_of com1:company
        com0:company parent_of com2:company
        com0:company parent_of com3:company
        com1:company parent_of com4:company
        com2:company parent_of com5:company
        com3:company parent_of com4:company
        com3:company parent_of com5:company
        "#,
    )
    .expect("valid graph");

    // Q4 (merging): a company merged from a same-named parent is identified
    // by its name and the *other* parent. The same-named parent is a
    // wildcard (~p): it need not be the same entity on both sides — that is
    // exactly why com4/com5 can be identified before com1/com2.
    // Q5 (splitting): a company split from a same-named parent is
    // identified by its name and a sibling (entity variable d).
    let keys = KeySet::parse(
        r#"
        key "Q4" company(x) {
            x -name_of-> n*;
            ~p:company -name_of-> n*;
            ~p:company -parent_of-> x;
            q:company -parent_of-> x;
        }
        key "Q5" company(x) {
            x -name_of-> n*;
            ~p:company -name_of-> n*;
            ~p:company -parent_of-> x;
            ~p:company -parent_of-> d:company;
        }
        "#,
    )
    .expect("valid keys");
    let compiled = keys.compile(&g);

    // Example 5: G2 does not satisfy Q4 — com4/com5 are duplicates.
    assert!(!satisfies(&g, &compiled));
    println!("violations under node identity (Example 5):");
    for v in key_violations(&g, &compiled) {
        println!(
            "  {}: {} <=> {}",
            v.key_name,
            g.entity_label(v.pair.0),
            g.entity_label(v.pair.1)
        );
    }

    // Entity matching merges both duplicate pairs (Example 7).
    let out = em_mr(&g, &compiled, 2, MrVariant::Opt);
    println!("\n{}", out.report);
    println!("deduplicated registry:");
    for class in out.eq.classes() {
        let names: Vec<String> = class.iter().map(|&e| g.entity_label(e)).collect();
        println!("  {}", names.join(" = "));
    }

    let c4 = g.entity_named("com4").unwrap();
    let c5 = g.entity_named("com5").unwrap();
    let c1 = g.entity_named("com1").unwrap();
    let c2 = g.entity_named("com2").unwrap();
    assert!(out.eq.same(c4, c5), "Q4 merges the post-merger records");
    assert!(out.eq.same(c1, c2), "Q5 merges the split records");
    println!("\nas in Example 7: (com4, com5) by Q4 and (com1, com2) by Q5");
}
