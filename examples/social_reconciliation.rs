//! Social-network reconciliation at scale: match user accounts across two
//! networks (the paper's Google+ use case). This example uses the workload
//! generator — the same machinery as the benchmark harness — and runs the
//! full pipeline: generate, compile keys, match in parallel, validate
//! against the planted ground truth, and report optimization effects.
//!
//! ```text
//! cargo run --release --example social_reconciliation
//! ```

use gk_datagen::{generate, GenConfig};
use keys_for_graphs::prelude::*;

fn main() {
    // A Google+-shaped social-attribute network with planted duplicate
    // accounts; chains of length 2 mean an account match can hinge on an
    // attribute-entity match (e.g. the same university under two ids).
    let cfg = GenConfig::google()
        .with_scale(0.4)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    println!("network: {}", GraphStats::of(&w.graph));
    println!(
        "keys: {} ({} recursive), planted duplicate pairs: {}",
        w.keys.cardinality(),
        w.keys.recursive_count(),
        w.truth.len()
    );

    let keys = w.keys.compile(&w.graph);

    // Reconcile with all four parallel algorithms; all must agree with the
    // planted truth.
    let runs = [
        em_mr(&w.graph, &keys, 4, MrVariant::Base),
        em_mr(&w.graph, &keys, 4, MrVariant::Opt),
        em_vc(&w.graph, &keys, 4, VcVariant::Base),
        em_vc(&w.graph, &keys, 4, VcVariant::Opt { k: 4 }),
    ];
    println!();
    for out in &runs {
        let ok = out.identified_pairs() == w.truth;
        println!(
            "{}  [{}]",
            out.report,
            if ok { "matches ground truth" } else { "WRONG" }
        );
        assert!(ok);
    }

    // Show a couple of reconciled account clusters.
    println!("\nsample reconciliations:");
    for (a, b) in w.truth.iter().take(5) {
        println!(
            "  {} ({}) <=> {} (same real-world entity)",
            w.graph.entity_label(*a),
            w.graph.type_str(w.graph.entity_type(*a)),
            w.graph.entity_label(*b),
        );
    }

    // Optimization effects (§4.2): candidate reduction by pairing.
    let base = &runs[0].report;
    let opt = &runs[1].report;
    println!(
        "\npairing filter: |L| {} -> {} candidates ({:.0}% reduction)",
        base.candidates,
        opt.candidates,
        100.0 * (1.0 - opt.candidates as f64 / base.candidates.max(1) as f64)
    );
    println!(
        "EM_MR iso checks {} -> {} with incremental checking",
        base.iso_checks, opt.iso_checks
    );
}
