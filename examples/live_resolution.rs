//! Live entity resolution: a resident server, queried and fed in-process
//! through the **typed** API (`Server::execute` with `Request`/`Response`
//! values — no string surgery).
//!
//! Models a music catalog that starts with one known duplicate pair and
//! receives streaming updates: a re-issued album arrives triple by triple,
//! and the moment its identifying attributes (Q2: name + release year) are
//! complete, the server merges it — and the recursive artist key (Q3)
//! cascades the merge to its artist. At the end, Σ itself evolves at
//! runtime: a discovered name-only artist key is installed with `AddKey`
//! and the closure grows without a restart. Every step prints the typed
//! request in its canonical wire form and the server's typed response, so
//! running this example shows the full query → ingest → advance → re-key
//! loop without any sockets.
//!
//! Run with: `cargo run --example live_resolution`

use keys_for_graphs::prelude::*;

/// Executes one typed request and prints the canonical request line plus
/// the rendered response — exactly what a TCP session would show.
fn ask(server: &Server, req: Request) {
    println!("> {}", req.render());
    for l in server.execute(req).render().lines() {
        println!("  {l}");
    }
}

fn same(a: &str, b: &str) -> Request {
    Request::Same {
        a: a.into(),
        b: b.into(),
    }
}

fn main() {
    let graph = parse_graph(
        r#"
        # The catalog at startup: alb1/alb2 are the same album under
        # different ids; alb3 is (so far) an unrelated release.
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb2:album  recorded_by   art2:artist
        art2:artist name_of       "The Beatles"
        alb3:album  name_of       "Anthology 2"
        alb3:album  recorded_by   art3:artist
        art3:artist name_of       "The Beatles"
        "#,
    )
    .expect("catalog parses");

    let keys = parse_keys(
        r#"
        key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
        key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
        "#,
    )
    .expect("keys parse");

    println!("== startup: chase(G, Σ) runs once, then stays resident ==");
    let server = Server::new(graph, KeySet::new(keys).expect("valid key set"));
    ask(&server, Request::Stats);

    println!("\n== the planted duplicate is already resolved ==");
    ask(&server, same("alb1", "alb2"));
    ask(
        &server,
        Request::Dups {
            entity: "art1".into(),
        },
    );
    ask(
        &server,
        Request::Explain {
            a: "art1".into(),
            b: "art2".into(),
        },
    );

    println!("\n== alb3 lacks a release year: Q2 cannot fire yet ==");
    ask(&server, same("alb1", "alb3"));

    println!("\n== a streamed insert completes alb3's key — watch the cascade ==");
    ask(
        &server,
        Request::Insert {
            batch: r#"alb3:album release_year "1996""#.into(),
        },
    );
    ask(&server, same("alb1", "alb3"));
    ask(
        &server,
        Request::Explain {
            a: "art1".into(),
            b: "art3".into(),
        },
    );

    println!("\n== new entities are first-class: a fourth copy arrives whole ==");
    ask(
        &server,
        Request::Insert {
            batch: r#"alb4:album name_of "Anthology 2" ; alb4:album release_year "1996" ; alb4:album recorded_by art4:artist ; art4:artist name_of "The Beatles""#.into(),
        },
    );
    ask(
        &server,
        Request::Dups {
            entity: "alb1".into(),
        },
    );
    ask(
        &server,
        Request::Rep {
            entity: "alb4".into(),
        },
    );

    println!("\n== deletion is non-monotone: the server falls back to a full re-chase ==");
    ask(
        &server,
        Request::Delete {
            batch: r#"alb4:album release_year "1996""#.into(),
        },
    );
    ask(&server, same("alb1", "alb4"));

    println!("\n== Σ is live too: install a discovered key without a restart ==");
    ask(&server, Request::Keys);
    ask(
        &server,
        Request::AddKey {
            dsl: r#"key "AN" artist(x) { x -name_of-> n*; }"#.into(),
        },
    );
    // art4's album split off again, but the new name-only key holds the
    // artist cluster together regardless.
    ask(&server, same("art1", "art4"));
    ask(&server, Request::Stats);

    // The typed response is data, not text: branch on it directly.
    match server.execute(same("art1", "art4")) {
        Response::Same { rep, .. } => {
            println!("\ntyped answer: art1 and art4 share canonical rep {rep}");
        }
        Response::NotSame { .. } => println!("\ntyped answer: distinct artists"),
        other => println!("\nunexpected: {}", other.render()),
    }
}
