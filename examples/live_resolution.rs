//! Live entity resolution: a resident server, queried and fed in-process.
//!
//! Models a music catalog that starts with one known duplicate pair and
//! receives streaming updates: a re-issued album arrives triple by triple,
//! and the moment its identifying attributes (Q2: name + release year) are
//! complete, the server merges it — and the recursive artist key (Q3)
//! cascades the merge to its artist. Every step prints the server's actual
//! protocol responses, so running this example shows the full
//! query → ingest → incremental-advance → query loop without any sockets.
//!
//! Run with: `cargo run --example live_resolution`

use keys_for_graphs::prelude::*;

fn ask(server: &Server, line: &str) {
    println!("> {line}");
    for l in server.handle(line).lines() {
        println!("  {l}");
    }
}

fn main() {
    let graph = parse_graph(
        r#"
        # The catalog at startup: alb1/alb2 are the same album under
        # different ids; alb3 is (so far) an unrelated release.
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb2:album  recorded_by   art2:artist
        art2:artist name_of       "The Beatles"
        alb3:album  name_of       "Anthology 2"
        alb3:album  recorded_by   art3:artist
        art3:artist name_of       "The Beatles"
        "#,
    )
    .expect("catalog parses");

    let keys = parse_keys(
        r#"
        key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
        key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
        "#,
    )
    .expect("keys parse");

    println!("== startup: chase(G, Σ) runs once, then stays resident ==");
    let server = Server::new(graph, KeySet::new(keys).expect("valid key set"));
    ask(&server, "STATS");

    println!("\n== the planted duplicate is already resolved ==");
    ask(&server, "SAME alb1 alb2");
    ask(&server, "DUPS art1");
    ask(&server, "EXPLAIN art1 art2");

    println!("\n== alb3 lacks a release year: Q2 cannot fire yet ==");
    ask(&server, "SAME alb1 alb3");

    println!("\n== a streamed insert completes alb3's key — watch the cascade ==");
    ask(&server, r#"INSERT alb3:album release_year "1996""#);
    ask(&server, "SAME alb1 alb3");
    ask(&server, "EXPLAIN art1 art3");

    println!("\n== new entities are first-class: a fourth copy arrives whole ==");
    ask(
        &server,
        r#"INSERT alb4:album name_of "Anthology 2" ; alb4:album release_year "1996" ; alb4:album recorded_by art4:artist ; art4:artist name_of "The Beatles""#,
    );
    ask(&server, "DUPS alb1");
    ask(&server, "REP alb4");

    println!("\n== deletion is non-monotone: the server falls back to a full re-chase ==");
    ask(&server, r#"DELETE alb4:album release_year "1996""#);
    ask(&server, "SAME alb1 alb4");
    ask(&server, "STATS");
}
