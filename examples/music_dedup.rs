//! Knowledge fusion in a music catalogue — the paper's running example
//! (Example 1/7): albums and artists are **mutually recursive**: an album
//! is identified by its name plus its primary artist, while an artist is
//! identified by name plus one recorded album. Value-based key Q2 breaks
//! the cycle, and identifications then cascade through the recursion.
//!
//! ```text
//! cargo run --example music_dedup
//! ```

use keys_for_graphs::prelude::*;

fn main() {
    // Fig. 2's G1, extended: two feeds ingested the same discography.
    let g = parse_graph(
        r#"
        # feed A
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        alb4:album  name_of       "Let It Be"
        alb4:album  recorded_by   art1:artist

        # feed B (same real-world entities, fresh ids)
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb2:album  recorded_by   art2:artist
        art2:artist name_of       "The Beatles"
        alb5:album  name_of       "Let It Be"
        alb5:album  recorded_by   art2:artist

        # a genuinely different artist with a same-named album
        alb3:album  name_of       "Anthology 2"
        alb3:album  recorded_by   art3:artist
        art3:artist name_of       "John Farnham"
        "#,
    )
    .expect("valid graph");

    // Σ1 = {Q1, Q2, Q3} from Fig. 1. Q1 and Q3 are mutually recursive.
    let keys = KeySet::parse(
        r#"
        // An album is identified by its name and its primary artist.
        key "Q1" album(x) {
            x -name_of-> n*;
            x -recorded_by-> a:artist;
        }
        // ... or by its name and year of initial release.
        key "Q2" album(x) {
            x -name_of-> n*;
            x -release_year-> y*;
        }
        // An artist is identified by name and one recorded album.
        key "Q3" artist(x) {
            x -name_of-> n*;
            a:album -recorded_by-> x;
        }
        "#,
    )
    .expect("valid keys");
    println!(
        "Σ: {} keys, |Σ| = {}, {} recursive, longest dependency chain c = {}",
        keys.cardinality(),
        keys.total_size(),
        keys.recursive_count(),
        keys.longest_chain(),
    );

    let compiled = keys.compile(&g);

    // The sequential chase shows the cascade order.
    let chase = chase_reference(&g, &compiled, ChaseOrder::Deterministic);
    println!("\nchase steps ({} rounds):", chase.rounds);
    for s in &chase.steps {
        println!(
            "  {} <=> {}   (by {})",
            g.entity_label(s.pair.0),
            g.entity_label(s.pair.1),
            compiled.keys[s.key].name,
        );
    }

    // The parallel algorithms agree.
    let mr = em_mr(&g, &compiled, 2, MrVariant::Opt);
    let vc = em_vc(&g, &compiled, 2, VcVariant::Opt { k: 4 });
    assert_eq!(mr.identified_pairs(), chase.identified_pairs());
    assert_eq!(vc.identified_pairs(), chase.identified_pairs());
    println!("\n{}", mr.report);
    println!("{}", vc.report);

    println!("\nfused catalogue:");
    for class in chase.eq.classes() {
        let names: Vec<String> = class.iter().map(|&e| g.entity_label(e)).collect();
        println!("  {}", names.join(" = "));
    }
    // John Farnham's "Anthology 2" must NOT be merged.
    let art3 = g.entity_named("art3").unwrap();
    assert!(chase.eq.classes().iter().all(|c| !c.contains(&art3)));
    println!("\nart3 (John Farnham) correctly kept distinct");
}
