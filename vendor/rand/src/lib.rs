//! Shim for `rand` 0.8: the `Rng` / `SeedableRng` traits and `rngs::StdRng`,
//! backed by xoshiro256++ seeded through splitmix64. Deterministic for a
//! given seed — which is all the workload generators need; the stream is
//! *not* bit-compatible with upstream `StdRng`. See `vendor/README.md`.

/// Core RNG trait: a 64-bit generator plus the derived sampling helpers the
/// workspace uses.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (Lemire-style rejection for integers).
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform sample of a whole type (`bool`, integers, `f64` in [0,1)).
    fn gen<T: Uniform>(&mut self) -> T {
        T::uniform(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Rejection sampling on the top bits: unbiased.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return range.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        range.start + f64::uniform(rng) * (range.end - range.start)
    }
}

/// Types with a whole-domain uniform distribution for [`Rng::gen`].
pub trait Uniform: Sized {
    /// A uniform sample of the whole type.
    fn uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for bool {
    fn uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for u64 {
    fn uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for f64 {
    fn uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seedable generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(3usize..17);
            assert_eq!(x, b.gen_range(3usize..17));
            assert!((3..17).contains(&x));
        }
        let f: f64 = a.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
