//! Shim of the `libc` crate: exactly the raw Linux bindings the
//! `gk-server` epoll event loop calls, declared by hand (`extern "C"`
//! against the platform libc — no registry access in this build
//! environment, same constraint as every other `vendor/` shim).
//!
//! Names, types and constant values match the upstream `libc` crate on
//! `x86_64-unknown-linux-gnu` / `aarch64-unknown-linux-gnu`, so swapping
//! this shim for the registry crate is a no-op for the source tree.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `void` (opaque; only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// POSIX `ssize_t`.
pub type ssize_t = isize;
/// POSIX `size_t`.
pub type size_t = usize;

/// One epoll interest/readiness record (`struct epoll_event`).
///
/// Packed on x86-64 — the kernel ABI there has no padding between
/// `events` and `u64`; other 64-bit targets use natural layout. This is
/// exactly the upstream `libc` definition.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned token returned verbatim with each event.
    pub u64: u64,
}

// -- epoll_create1 flags ---------------------------------------------------
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

// -- epoll_ctl ops ---------------------------------------------------------
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

// -- epoll event bits ------------------------------------------------------
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

// -- eventfd flags ---------------------------------------------------------
pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

// -- fcntl -----------------------------------------------------------------
pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    /// Creates an epoll instance (`flags`: `EPOLL_CLOEXEC`).
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Adds/modifies/removes `fd` in the interest list of `epfd`.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Blocks up to `timeout` ms for ready events; returns the count.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Creates an eventfd counter (`flags`: `EFD_CLOEXEC | EFD_NONBLOCK`).
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    /// File-descriptor control (`F_GETFL`/`F_SETFL` + `O_NONBLOCK` here).
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    /// Raw read (drains the eventfd counter).
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// Raw write (bumps the eventfd counter).
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// Closes a raw descriptor the event loop owns outside of Rust types.
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_round_trip_with_eventfd_wakeup() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let efd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(efd >= 0, "eventfd failed");
            let mut ev = epoll_event {
                events: EPOLLIN | EPOLLET,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, efd, &mut ev), 0);

            // Nothing pending: a zero-timeout wait returns no events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // Bump the counter: the wait reports EPOLLIN with our token.
            let one: u64 = 1;
            assert_eq!(
                write(efd, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let got_token = out[0].u64;
            assert_eq!(got_token, 42);
            assert_ne!(out[0].events & EPOLLIN, 0);

            // Drain, and the edge does not re-trigger.
            let mut v: u64 = 0;
            assert_eq!(read(efd, (&mut v as *mut u64).cast(), 8), 8);
            assert_eq!(v, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            assert_eq!(close(efd), 0);
            assert_eq!(close(ep), 0);
        }
    }

    #[test]
    fn fcntl_sets_and_reports_nonblocking() {
        unsafe {
            let efd = eventfd(0, EFD_CLOEXEC);
            assert!(efd >= 0);
            let flags = fcntl(efd, F_GETFL);
            assert!(flags >= 0);
            assert_eq!(flags & O_NONBLOCK, 0);
            assert_eq!(fcntl(efd, F_SETFL, flags | O_NONBLOCK), 0);
            assert_ne!(fcntl(efd, F_GETFL) & O_NONBLOCK, 0);
            assert_eq!(close(efd), 0);
        }
    }
}
