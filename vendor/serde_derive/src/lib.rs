//! Shim for `serde_derive`: `#[derive(Serialize)]` that emits a trivial
//! `impl serde::Serialize` so derived types satisfy `T: Serialize` bounds.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: emits `impl serde::Serialize for <Type>`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    // Find the type name: the identifier after the first `struct` or `enum`
    // token. Generics are not supported (and not used in this workspace).
    let mut tokens = input.into_iter();
    let mut name = None;
    while let Some(tok) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(proc_macro::TokenTree::Ident(ty)) = tokens.next() {
                    name = Some(ty.to_string());
                }
                break;
            }
        }
    }
    match name {
        Some(ty) => format!("impl serde::Serialize for {ty} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}
