//! Shim for `proptest`: the `proptest!` macro, `prop_assert*`, and the
//! strategy combinators the workspace's property tests use. Cases are
//! generated from a deterministic per-test RNG; there is **no shrinking** —
//! a failing case prints its generated inputs and re-panics. See
//! `vendor/README.md`.

use std::marker::PhantomData;
use std::ops::Range;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Test-run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<B, F: Fn(Self::Value) -> B>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, B, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
    type Value = B;
    fn generate(&self, rng: &mut test_runner::TestRng) -> B {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return self.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a whole-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Greedy counterexample minimization (a ddmin-style reduction).
///
/// The `proptest!` harness itself does not shrink (see module docs), but a
/// property that finds a failing input can call [`shrink::minimize_vec`]
/// to report a *minimal* counterexample: elements are removed in halving
/// chunk sizes while `fails` keeps returning `true`, until no single
/// element can be removed.
pub mod shrink {
    /// Returns a minimal (1-minimal: no single element removable) subset of
    /// `input` on which `fails` still returns `true`. `fails(&input)` must
    /// hold on entry; the predicate is re-run on every candidate subset, so
    /// it should be deterministic.
    pub fn minimize_vec<T: Clone>(input: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
        assert!(fails(input), "minimize_vec needs a failing input");
        let mut cur: Vec<T> = input.to_vec();
        let mut chunk = cur.len().div_ceil(2).max(1);
        loop {
            let mut reduced = false;
            let mut start = 0;
            while start < cur.len() {
                let end = (start + chunk).min(cur.len());
                let mut candidate = Vec::with_capacity(cur.len() - (end - start));
                candidate.extend_from_slice(&cur[..start]);
                candidate.extend_from_slice(&cur[end..]);
                if !candidate.is_empty() && fails(&candidate) {
                    cur = candidate;
                    reduced = true;
                    // Re-test from the same offset: the next chunk slid in.
                } else if candidate.is_empty() && fails(&candidate) {
                    return Vec::new();
                } else {
                    start = end;
                }
            }
            if chunk == 1 && !reduced {
                return cur;
            }
            if !reduced {
                chunk = (chunk / 2).max(1);
            }
        }
    }
}

/// The deterministic RNG behind every property run.
pub mod test_runner {
    /// xoshiro256++ seeded from a string (typically the test's path) via
    /// FxHash + splitmix64 — the same cases on every run.
    pub struct TestRng {
        s: [u64; 4],
    }

    /// Builds the RNG for a named test.
    pub fn rng_for(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    impl TestRng {
        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Asserts within a property (plain `assert!`: no shrinking to resume).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases. A failing case prints
/// its generated inputs before re-panicking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = outcome {
                    eprintln!("[proptest] {} failed at case #{case}: {desc}", stringify!($name));
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}
