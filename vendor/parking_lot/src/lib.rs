//! Shim for `parking_lot`: the non-poisoning `Mutex` / `RwLock` API over
//! `std::sync` primitives. A poisoned std lock means a worker panicked while
//! holding it; matching parking_lot, the panic is propagated to the caller.
//! See `vendor/README.md`.

/// A mutex whose `lock` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
