//! Shim for `rayon`: `par_iter()` over slices with `map` / `filter_map` /
//! `collect`, executed on `std::thread::scope` with one chunk per available
//! core. Order is preserved (chunk results are concatenated in order), so
//! collected output is identical to the sequential result — the property the
//! workspace's correctness tests rely on. See `vendor/README.md`.

/// The traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// How many worker threads a parallel run uses.
fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(len).max(1)
}

/// Runs `f` over equal chunks of `0..len` on scoped threads and returns the
/// per-chunk outputs in chunk order.
fn run_chunked<'a, T: Sync, B: Send>(
    items: &'a [T],
    f: impl Fn(&'a [T]) -> Vec<B> + Sync,
) -> Vec<Vec<B>> {
    let p = threads_for(items.len());
    if p <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(p);
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            items.chunks(chunk).map(|c| scope.spawn(|| f(c))).collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// `.par_iter()` — entry point for parallel iteration over `&[T]`.
pub trait IntoParallelRefIterator<'a> {
    /// The element type iterated by reference.
    type Item: Sync + 'a;
    /// Starts a parallel iterator over the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map.
    pub fn map<B, F>(self, f: F) -> Map<'a, T, F>
    where
        B: Send,
        F: Fn(&'a T) -> B + Sync,
    {
        Map { items: self.items, f }
    }

    /// Parallel filter-map.
    pub fn filter_map<B, F>(self, f: F) -> FilterMap<'a, T, F>
    where
        B: Send,
        F: Fn(&'a T) -> Option<B> + Sync,
    {
        FilterMap { items: self.items, f }
    }
}

/// Result of [`ParIter::map`].
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> Map<'a, T, F> {
    /// Runs the map in parallel and collects in input order.
    pub fn collect<C, B>(self) -> C
    where
        B: Send,
        F: Fn(&'a T) -> B + Sync,
        C: FromIterator<B>,
    {
        let f = &self.f;
        run_chunked(self.items, |chunk| chunk.iter().map(f).collect())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Result of [`ParIter::filter_map`].
pub struct FilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> FilterMap<'a, T, F> {
    /// Runs the filter-map in parallel and collects survivors in input order.
    pub fn collect<C, B>(self) -> C
    where
        B: Send,
        F: Fn(&'a T) -> Option<B> + Sync,
        C: FromIterator<B>,
    {
        let f = &self.f;
        run_chunked(self.items, |chunk| chunk.iter().filter_map(f).collect())
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let odds: Vec<u64> = xs
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odds.len(), 500);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u64> = Vec::new();
        let out: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
