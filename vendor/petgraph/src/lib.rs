//! Shim for `petgraph`: the directed-graph type and the two algorithms the
//! key-dependency analysis uses (`condensation`, `toposort`), with
//! petgraph-compatible paths and signatures. See `vendor/README.md`.

/// Graph types, mirroring `petgraph::graph`.
pub mod graph {
    /// Index of a node in a [`DiGraph`].
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
    pub struct NodeIndex(pub(crate) usize);

    impl NodeIndex {
        /// Creates an index from a raw `usize`.
        pub fn new(i: usize) -> Self {
            NodeIndex(i)
        }

        /// The raw `usize` of this index.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// A directed graph with node weights `N` and edge weights `E`,
    /// adjacency-list backed.
    #[derive(Clone, Debug, Default)]
    pub struct DiGraph<N, E> {
        pub(crate) nodes: Vec<N>,
        /// Per-node out-edges as `(target, weight)`.
        pub(crate) edges: Vec<Vec<(usize, E)>>,
    }

    impl<N, E> DiGraph<N, E> {
        /// An empty graph.
        pub fn new() -> Self {
            DiGraph { nodes: Vec::new(), edges: Vec::new() }
        }

        /// Adds a node, returning its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            self.edges.push(Vec::new());
            NodeIndex(self.nodes.len() - 1)
        }

        /// Adds the edge `a → b`, or replaces its weight if already present.
        pub fn update_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) {
            match self.edges[a.0].iter_mut().find(|(t, _)| *t == b.0) {
                Some(slot) => slot.1 = weight,
                None => self.edges[a.0].push((b.0, weight)),
            }
        }

        /// Adds the edge `a → b` unconditionally.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) {
            self.edges[a.0].push((b.0, weight));
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.iter().map(Vec::len).sum()
        }

        /// All node indices, ascending.
        pub fn node_indices(&self) -> impl Iterator<Item = NodeIndex> {
            (0..self.nodes.len()).map(NodeIndex)
        }

        /// Out-neighbors of `n`.
        pub fn neighbors(&self, n: NodeIndex) -> impl Iterator<Item = NodeIndex> + '_ {
            self.edges[n.0].iter().map(|&(t, _)| NodeIndex(t))
        }
    }

    impl<N, E> std::ops::Index<NodeIndex> for DiGraph<N, E> {
        type Output = N;
        fn index(&self, n: NodeIndex) -> &N {
            &self.nodes[n.0]
        }
    }
}

/// Graph algorithms, mirroring `petgraph::algo`.
pub mod algo {
    use super::graph::{DiGraph, NodeIndex};

    /// Error value of [`toposort`] when the graph has a cycle.
    #[derive(Clone, Copy, Debug)]
    pub struct Cycle(pub NodeIndex);

    /// Topological order of an acyclic graph (Kahn's algorithm); `Err` on a
    /// cycle. The second argument mirrors petgraph's optional scratch space
    /// and is ignored.
    pub fn toposort<N, E>(
        g: &DiGraph<N, E>,
        _space: Option<()>,
    ) -> Result<Vec<NodeIndex>, Cycle> {
        let n = g.node_count();
        let mut indeg = vec![0usize; n];
        for edges in &g.edges {
            for &(t, _) in edges {
                indeg[t] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(NodeIndex::new(v));
            for &(t, _) in &g.edges[v] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let stuck = (0..n).find(|&v| indeg[v] > 0).unwrap();
            Err(Cycle(NodeIndex::new(stuck)))
        }
    }

    /// Condenses strongly connected components into single nodes carrying
    /// the member weights (Tarjan). With `make_acyclic`, self-edges and
    /// intra-SCC edges are dropped, so the result is a DAG.
    pub fn condensation<N, E: Clone>(
        g: DiGraph<N, E>,
        make_acyclic: bool,
    ) -> DiGraph<Vec<N>, E> {
        let scc_of = tarjan_scc_ids(&g);
        let num_sccs = scc_of.iter().copied().max().map_or(0, |m| m + 1);

        let mut out: DiGraph<Vec<N>, E> = DiGraph::new();
        for _ in 0..num_sccs {
            out.add_node(Vec::new());
        }
        for (v, w) in g.nodes.into_iter().enumerate() {
            out.nodes[scc_of[v]].push(w);
        }
        for (v, edges) in g.edges.into_iter().enumerate() {
            for (t, e) in edges {
                let (a, b) = (scc_of[v], scc_of[t]);
                if make_acyclic && a == b {
                    continue;
                }
                out.update_edge(NodeIndex::new(a), NodeIndex::new(b), e);
            }
        }
        out
    }

    /// Iterative Tarjan SCC, returning each node's component id. Components
    /// are renumbered so ids ascend with the smallest member node — a stable,
    /// deterministic labeling.
    fn tarjan_scc_ids<N, E>(g: &DiGraph<N, E>) -> Vec<usize> {
        let n = g.node_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_comp = 0usize;

        // Explicit DFS frames: (node, next-edge cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor < g.edges[v].len() {
                    let (t, _) = g.edges[v][*cursor];
                    *cursor += 1;
                    if index[t] == usize::MAX {
                        index[t] = next_index;
                        low[t] = next_index;
                        next_index += 1;
                        stack.push(t);
                        on_stack[t] = true;
                        frames.push((t, 0));
                    } else if on_stack[t] {
                        low[v] = low[v].min(index[t]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }

        // Renumber components by smallest member for determinism.
        let mut first_member = vec![usize::MAX; next_comp];
        for v in 0..n {
            first_member[comp[v]] = first_member[comp[v]].min(v);
        }
        let mut order: Vec<usize> = (0..next_comp).collect();
        order.sort_unstable_by_key(|&c| first_member[c]);
        let mut renumber = vec![0usize; next_comp];
        for (new_id, &c) in order.iter().enumerate() {
            renumber[c] = new_id;
        }
        comp.into_iter().map(|c| renumber[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::algo::{condensation, toposort};
    use super::graph::DiGraph;

    #[test]
    fn condense_mutual_recursion() {
        // 0 <-> 1, 1 -> 2: condensation is {0,1} -> {2}.
        let mut g: DiGraph<usize, ()> = DiGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.update_edge(a, b, ());
        g.update_edge(b, a, ());
        g.update_edge(b, c, ());
        let cond = condensation(g, true);
        assert_eq!(cond.node_count(), 2);
        assert_eq!(cond.edge_count(), 1);
        let order = toposort(&cond, None).unwrap();
        assert_eq!(cond[order[0]].len(), 2);
        assert_eq!(cond[order[1]], vec![2]);
    }

    #[test]
    fn toposort_detects_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.update_edge(a, b, ());
        g.update_edge(b, a, ());
        assert!(toposort(&g, None).is_err());
    }

    #[test]
    fn update_edge_deduplicates() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.update_edge(a, b, 1);
        g.update_edge(a, b, 2);
        assert_eq!(g.edge_count(), 1);
    }
}
