//! Shim for `serde`: the `Serialize` marker plus a no-op derive. Nothing in
//! the workspace serializes through serde at runtime — the derive records
//! intent for environments with the real crate. See `vendor/README.md`.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

// The derive macro lives in the type namespace's sibling macro namespace, so
// `use serde::Serialize` imports both the trait and the derive.
pub use serde_derive::Serialize;
