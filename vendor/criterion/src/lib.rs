//! Shim for `criterion`: the macro and builder surface the bench targets
//! use, with a simple measure-and-print runner (median of a fixed number of
//! timed iterations) instead of criterion's statistical machinery. See
//! `vendor/README.md`.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _cr: self }
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _cr: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b.samples);
        self
    }

    /// Finishes the group (printing happens per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// An identity function that defeats constant-folding of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {name:<48} (no samples)");
        return;
    }
    let mut s: Vec<Duration> = samples.to_vec();
    s.sort_unstable();
    let median = s[s.len() / 2];
    let min = s[0];
    let max = s[s.len() - 1];
    println!(
        "bench {name:<48} median {median:>12?}   min {min:>12?}   max {max:>12?}   n={}",
        s.len()
    );
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut cr = $crate::Criterion::default();
            $( $target(&mut cr); )+
        }
    };
}

/// Declares the benchmark `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
