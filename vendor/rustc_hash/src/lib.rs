//! Shim for the `rustc-hash` crate: the FxHash function (a simple
//! multiply-and-rotate hash originally from Firefox) plus the `HashMap` /
//! `HashSet` aliases the workspace uses. See `vendor/README.md`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash hasher: fast, not DoS-resistant — exactly the trade the
/// compiler makes for interned-id keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}
