//! The substrate crates are general-purpose frameworks, not shims bolted to
//! entity matching. These tests run classic distributed-computing workloads
//! on them: an inverted index and an iterative join on MapReduce; connected
//! components and label propagation on the vertex-centric engine.

use keys_for_graphs::mapreduce::{Cluster, Emitter, MapReduce};
use keys_for_graphs::vertexcentric::{Ctx, Engine, VertexProgram};

// ---------------------------------------------------------------------------
// MapReduce: inverted index
// ---------------------------------------------------------------------------

struct InvertedIndex;

impl MapReduce for InvertedIndex {
    type KIn = u32; // document id
    type VIn = String; // document text
    type KMid = String; // term
    type VMid = u32; // document id
    type KOut = String;
    type VOut = Vec<u32>; // sorted posting list

    fn map(&self, doc: &u32, text: &String, out: &mut Emitter<String, u32>) {
        let mut terms: Vec<&str> = text.split_whitespace().collect();
        terms.sort_unstable();
        terms.dedup();
        for t in terms {
            out.emit(t.to_string(), *doc);
        }
    }

    fn reduce(&self, term: &String, mut docs: Vec<u32>, out: &mut Emitter<String, Vec<u32>>) {
        docs.sort_unstable();
        docs.dedup();
        out.emit(term.clone(), docs);
    }
}

#[test]
fn inverted_index_on_mapreduce() {
    let docs = vec![
        (1u32, "keys for graphs".to_string()),
        (2, "graphs and keys".to_string()),
        (3, "entity matching for graphs".to_string()),
    ];
    let (mut index, stats) = Cluster::new(3).run(&InvertedIndex, docs.clone());
    index.sort();
    let get = |t: &str| {
        index
            .iter()
            .find(|(term, _)| term == t)
            .map(|(_, d)| d.clone())
            .unwrap_or_default()
    };
    assert_eq!(get("graphs"), vec![1, 2, 3]);
    assert_eq!(get("keys"), vec![1, 2]);
    assert_eq!(get("entity"), vec![3]);
    assert!(stats.records_shuffled >= 8);

    // Simulation mode computes the identical index.
    let (mut sim_index, sim_stats) = Cluster::simulated(3).run(&InvertedIndex, docs);
    sim_index.sort();
    assert_eq!(index, sim_index);
    assert!(
        sim_stats.sim_makespan
            <= sim_stats.map_time + sim_stats.shuffle_time + sim_stats.reduce_time
    );
}

// ---------------------------------------------------------------------------
// MapReduce: iterative semi-naive reachability (rounds driven by a driver,
// the same pattern EM_MR uses)
// ---------------------------------------------------------------------------

struct Hop {
    edges: Vec<(u32, u32)>,
}

impl MapReduce for Hop {
    type KIn = u32; // frontier node
    type VIn = ();
    type KMid = u32; // discovered node
    type VMid = ();
    type KOut = u32;
    type VOut = ();

    fn map(&self, n: &u32, _: &(), out: &mut Emitter<u32, ()>) {
        for &(s, t) in &self.edges {
            if s == *n {
                out.emit(t, ());
            }
        }
    }

    fn reduce(&self, n: &u32, _vs: Vec<()>, out: &mut Emitter<u32, ()>) {
        out.emit(*n, ());
    }
}

#[test]
fn iterative_reachability_driver() {
    // 0 -> 1 -> 2 -> 3, 1 -> 4; 5 -> 6 unreachable from 0.
    let job = Hop {
        edges: vec![(0, 1), (1, 2), (2, 3), (1, 4), (5, 6)],
    };
    let cluster = Cluster::new(2);
    let mut reached: std::collections::BTreeSet<u32> = [0u32].into();
    let mut frontier = vec![(0u32, ())];
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        let (out, _) = cluster.run(&job, frontier);
        frontier = out
            .into_iter()
            .filter(|(n, _)| reached.insert(*n))
            .collect();
    }
    assert_eq!(reached.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    assert_eq!(rounds, 4, "depth 3 + one fixpoint round");
}

// ---------------------------------------------------------------------------
// Vertex-centric: connected components by min-label propagation
// ---------------------------------------------------------------------------

struct Components {
    adj: Vec<Vec<usize>>,
}

impl VertexProgram for Components {
    type State = usize; // component label
    type Msg = usize;

    fn init_state(&self, v: usize) -> usize {
        v
    }

    fn on_start(&self, v: usize, label: &mut usize, ctx: &mut Ctx<'_, usize>) {
        for &n in &self.adj[v] {
            ctx.send(n, *label);
        }
        let _ = v;
    }

    fn on_message(&self, _v: usize, label: &mut usize, m: usize, ctx: &mut Ctx<'_, usize>) {
        if m < *label {
            *label = m;
            for &n in &self.adj[_v] {
                ctx.send(n, m);
            }
        }
    }
}

#[test]
fn connected_components_vertex_centric() {
    // Two components: {0,1,2,3} (a cycle plus a chord) and {4,5}.
    let undirected = |pairs: &[(usize, usize)], n: usize| {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in pairs {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    };
    let prog = Components {
        adj: undirected(&[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (4, 5)], 6),
    };
    let all: Vec<usize> = (0..6).collect();
    for p in [1, 2, 4] {
        let (labels, _) = Engine::new(p).run(&prog, 6, &all);
        assert_eq!(labels, vec![0, 0, 0, 0, 4, 4], "p={p}");
        let (sim_labels, stats) = Engine::new(p).run_simulated(&prog, 6, &all);
        assert_eq!(sim_labels, labels);
        assert_eq!(stats.activations, 6);
    }
}

// ---------------------------------------------------------------------------
// Vertex-centric: asynchronous accumulation is linearizable per vertex
// ---------------------------------------------------------------------------

struct Counter {
    n: usize,
}

impl VertexProgram for Counter {
    type State = u64;
    type Msg = u64;

    fn init_state(&self, _v: usize) -> u64 {
        0
    }

    fn on_start(&self, v: usize, _s: &mut u64, ctx: &mut Ctx<'_, u64>) {
        // Everyone sends their id+1 to everyone.
        for u in 0..self.n {
            ctx.send(u, v as u64 + 1);
        }
    }

    fn on_message(&self, _v: usize, s: &mut u64, m: u64, _ctx: &mut Ctx<'_, u64>) {
        *s += m;
    }
}

#[test]
fn per_vertex_state_is_race_free() {
    // Each vertex receives 1+2+...+n exactly once from each sender; since a
    // vertex's state is touched only by its owning worker, the sum is exact
    // even under maximal concurrency.
    let n = 24;
    let expected: u64 = (1..=n as u64).sum();
    for p in [2, 4, 8] {
        let (states, stats) = Engine::new(p).run(&Counter { n }, n, &(0..n).collect::<Vec<_>>());
        assert!(states.iter().all(|&s| s == expected), "p={p}: {states:?}");
        assert_eq!(stats.messages, (n * n) as u64);
    }
}
