//! Runtime key management (`ADDKEY`/`DROPKEY`) under fire: random op
//! streams interleaving key changes with `INSERT`/`DELETE`, checked
//! against the one invariant everything else hangs off:
//!
//! > at every moment, the serving state is exactly
//! > `chase(G_now, Σ_now)` — and after a crash, recovery reproduces it.
//!
//! Two property tests: a live one (after every accepted op the classes
//! equal a from-scratch reference chase of the materialized graph under
//! the current Σ) and a durable one (kill the server after the whole
//! stream, recover from snapshot + WAL, and require classes *and* the
//! declared Σ to match, plus byte-identical `KEYS`/`DUPS` answers across
//! the restart).

use keys_for_graphs::core::{chase_reference, write_keys, ChaseEngine, ChaseOrder, KeySet};
use keys_for_graphs::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const KEYS: &str = r#"
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

const BASE: &str = r#"
    a0:album name_of "n0"
    a0:album release_year "y0"
    a1:album name_of "n1"
    a1:album release_year "y1"
    a2:album name_of "n2"
    a2:album recorded_by r0:artist
    r0:artist name_of "band0"
    a3:album name_of "n0"
"#;

/// The pool of keys an `ADDKEY` op can draw from — value-based and
/// recursive shapes, over the same vocabulary the triple ops use.
fn addable_key(j: u8) -> &'static str {
    match j % 4 {
        0 => r#"key "KA" album(x) { x -name_of-> n*; }"#,
        1 => r#"key "KB" artist(x) { x -name_of-> n*; }"#,
        2 => r#"key "KC" album(x) { x -release_year-> y*; }"#,
        _ => r#"key "KD" album(x) { x -name_of-> n*; x -recorded_by-> a:artist; }"#,
    }
}

/// Names that a `DROPKEY` op can target (the base Σ plus the pool).
fn droppable_name(j: u8) -> &'static str {
    match j % 6 {
        0 => "Q2",
        1 => "Q3",
        2 => "KA",
        3 => "KB",
        4 => "KC",
        _ => "KD",
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    /// `INSERT a{i}:album name_of "n{v}"`
    Name(u8, u8),
    /// `INSERT a{i}:album release_year "y{v}"`
    Year(u8, u8),
    /// `INSERT a{i}:album recorded_by r{j} ; r{j}:artist name_of "band{j}"`
    Link(u8, u8),
    /// `DELETE a{i}:album release_year "y{v}"` (often a miss — then skipped)
    DelYear(u8, u8),
    /// `ADDKEY <pool key j>` (a miss when the name already exists)
    AddKey(u8),
    /// `DROPKEY <pool name j>` (a miss when not declared)
    DropKey(u8),
    /// `SNAPSHOT` — exercises the key-epoch-in-snapshot path mid-stream.
    Snapshot,
}

impl Op {
    fn decode(kind: u8, i: u8, v: u8) -> Op {
        match kind % 8 {
            0 | 1 => Op::Name(i, v),
            2 => Op::Year(i, v),
            3 => Op::Link(i, v % 2),
            4 => Op::DelYear(i, v),
            5 => Op::AddKey(v),
            6 => Op::DropKey(i.wrapping_add(v)),
            _ => Op::Snapshot,
        }
    }

    /// The protocol line for this op.
    fn line(&self) -> String {
        match *self {
            Op::Name(i, v) => format!("INSERT a{i}:album name_of \"n{v}\""),
            Op::Year(i, v) => format!("INSERT a{i}:album release_year \"y{v}\""),
            Op::Link(i, j) => format!(
                "INSERT a{i}:album recorded_by r{j}:artist ; r{j}:artist name_of \"band{j}\""
            ),
            Op::DelYear(i, v) => format!("DELETE a{i}:album release_year \"y{v}\""),
            Op::AddKey(j) => format!("ADDKEY {}", addable_key(j)),
            Op::DropKey(j) => format!("DROPKEY {}", droppable_name(j)),
            Op::Snapshot => "SNAPSHOT".into(),
        }
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..8, 0u8..6, 0u8..4).prop_map(|(kind, i, v)| Op::decode(kind, i, v)),
        1..14,
    )
}

fn casedir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "gk-keymgmt-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The from-scratch oracle: reference chase of the materialized graph
/// under the declared Σ.
fn oracle_classes(snap: &keys_for_graphs::server::IndexState) -> Vec<Vec<EntityId>> {
    let frozen = snap.graph.materialize();
    let compiled = snap.keys.compile(&frozen);
    chase_reference(&frozen, &compiled, ChaseOrder::Deterministic)
        .eq
        .classes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Live invariant: after every accepted op — triple or key change —
    /// the served classes equal `chase(G_now, Σ_now)` recomputed from
    /// scratch by the reference engine.
    #[test]
    fn interleaved_key_and_triple_ops_always_serve_the_terminal_chase(ops in ops_strategy()) {
        let server = Server::new(
            parse_graph(BASE).unwrap(),
            KeySet::parse(KEYS).unwrap(),
        );
        for op in &ops {
            if matches!(op, Op::Snapshot) {
                continue; // needs durability; covered below
            }
            let resp = server.handle(&op.line());
            prop_assert!(
                resp.starts_with("OK") || resp.starts_with("ERR"),
                "unexpected response to {:?}: {resp}",
                op.line()
            );
            let snap = server.index().snapshot();
            prop_assert_eq!(
                snap.eq.classes(),
                oracle_classes(&snap),
                "divergence after {:?}",
                op.line()
            );
        }
    }

    /// Durable invariant: crash after the stream, recover, and the
    /// declared Σ, the classes and the protocol answers all survive.
    #[test]
    fn recovery_reproduces_interleaved_key_and_triple_history(ops in ops_strategy()) {
        let dir = casedir("replay");
        let dur = Durability::in_dir(&dir);
        let (server, report) = Server::with_durability(
            parse_graph(BASE).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        ).unwrap();
        prop_assert!(!report.recovered);
        for op in &ops {
            let _ = server.handle(&op.line());
        }
        let live = server.index().snapshot();
        let live_classes = live.eq.classes();
        let live_keys = write_keys(live.keys.keys());
        let live_epoch = live.key_epoch;
        let keys_answer = server.handle("KEYS");
        let dups_answers: Vec<String> =
            (0..6).map(|i| server.handle(&format!("DUPS a{i}"))).collect();
        drop(server);

        // Recover purely from disk (snapshot + WAL suffix).
        let (idx, rep) = EmIndex::recover_durable(&dur, ChaseEngine::default())
            .unwrap()
            .expect("state persisted");
        prop_assert!(rep.recovered);
        let rec = idx.snapshot();
        prop_assert_eq!(&write_keys(rec.keys.keys()), &live_keys, "Σ must survive");
        prop_assert_eq!(rec.key_epoch, live_epoch, "epoch must survive");
        prop_assert_eq!(rec.eq.classes(), live_classes.clone(), "classes must survive");
        prop_assert_eq!(
            rec.eq.classes(),
            oracle_classes(&rec),
            "recovered state must equal a from-scratch chase under the final Σ"
        );
        // Protocol answers byte-identical across the restart.
        let restarted = Server::from_index(idx);
        prop_assert_eq!(restarted.handle("KEYS"), keys_answer);
        for (i, want) in dups_answers.iter().enumerate() {
            prop_assert_eq!(&restarted.handle(&format!("DUPS a{i}")), want);
        }
        drop(restarted);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A deterministic worst case on top of the random streams: add, use,
/// snapshot, drop, re-add across two restarts.
#[test]
fn empty_keyed_type_survives_startup_addkey_and_rechase() {
    // A keyed type with zero entities used to underflow the candidate
    // count `n * (n - 1) / 2` at n = 0 and panic in debug builds. The type
    // must be *interned* for its key to compile, which the text loader
    // can't produce — build the graph directly.
    let mut b = GraphBuilder::new();
    b.intern_type("album");
    b.intern_pred("release_year");
    let solo = b.entity("solo", "artist");
    b.attr(solo, "name_of", "The Beatles");
    let twin = b.entity("twin", "artist");
    b.attr(twin, "name_of", "The Beatles");
    let g = b.freeze();

    // Startup chase with a key on the entity-less type.
    let keys = KeySet::parse(
        r#"
        key "QE" album(x)  { x -name_of-> n*; }
        key "QA" artist(x) { x -name_of-> n*; }
        "#,
    )
    .unwrap();
    let server = Server::new(g, keys);
    assert!(server.handle("SAME solo twin").starts_with("YES"));

    // Runtime ADDKEY for another key on the empty type: the wake set is
    // empty, the chase must still succeed.
    let resp = server.handle(r#"ADDKEY key "QY" album(x) { x -release_year-> y* ; }"#);
    assert!(resp.starts_with("OK"), "{resp}");

    // DELETE forces the full re-chase path (candidate prep included)
    // while the keyed album type still has zero entities.
    let resp = server.handle(r#"DELETE twin:artist name_of "The Beatles""#);
    assert!(resp.starts_with("OK mode=full-rechase"), "{resp}");
    assert!(server.handle("SAME solo twin").starts_with("NO"));
}

#[test]
fn chase_survives_deleting_every_triple_of_a_keyed_type() {
    // Deleting all of a keyed type's triples leaves its entities bare
    // (entities are never garbage-collected); every candidate pair of the
    // type must then fail cleanly rather than panic anywhere in prep.
    let server = Server::new(
        parse_graph(
            r#"
            a1:album name_of "X"
            a2:album name_of "X"
            r1:artist name_of "B"
            r2:artist name_of "B"
            "#,
        )
        .unwrap(),
        KeySet::parse(
            r#"
            key "QN" album(x)  { x -name_of-> n*; }
            key "QA" artist(x) { x -name_of-> n*; }
            "#,
        )
        .unwrap(),
    );
    assert!(server.handle("SAME a1 a2").starts_with("YES"));
    let resp = server.handle(r#"DELETE a1:album name_of "X" ; a2:album name_of "X""#);
    assert!(resp.starts_with("OK mode=full-rechase"), "{resp}");
    assert!(server.handle("SAME a1 a2").starts_with("NO"));
    assert!(server.handle("SAME r1 r2").starts_with("YES"));
}

#[test]
fn addkey_dropkey_across_two_restarts() {
    let dir = casedir("two-restarts");
    let dur = Durability::in_dir(&dir);
    let (s, _) = Server::with_durability(
        parse_graph(BASE).unwrap(),
        KeySet::parse(KEYS).unwrap(),
        ChaseEngine::default(),
        &dur,
    )
    .unwrap();
    // a0 and a3 share name "n0": the name-only key merges them.
    assert!(s.handle("SAME a0 a3").starts_with("NO"));
    assert!(s
        .handle(r#"ADDKEY key "KA" album(x) { x -name_of-> n*; }"#)
        .starts_with("OK added"));
    assert!(s.handle("SAME a0 a3").starts_with("YES"));
    assert!(s.handle("SNAPSHOT").starts_with("OK"));
    assert!(s
        .handle(r#"INSERT a9:album name_of "n0""#)
        .starts_with("OK"));
    drop(s);

    // Restart 1: snapshot carries KA (epoch 1), WAL carries the insert.
    let (idx, rep) = EmIndex::recover_durable(&dur, ChaseEngine::default())
        .unwrap()
        .expect("state persisted");
    assert!(rep.recovered);
    let s = Server::from_index(idx);
    assert!(s.handle("SAME a0 a9").starts_with("YES"), "KA still active");
    assert!(s.handle("DROPKEY KA").starts_with("OK dropped"));
    assert!(s.handle("SAME a0 a3").starts_with("NO"));
    drop(s);

    // Restart 2: the drop replays; the re-add then works again.
    let (idx, _) = EmIndex::recover_durable(&dur, ChaseEngine::default())
        .unwrap()
        .expect("state persisted");
    let s = Server::from_index(idx);
    assert!(s.handle("SAME a0 a3").starts_with("NO"));
    let stats = s.handle("STATS");
    assert!(stats.contains("key_epoch=2"), "{stats}");
    assert!(s
        .handle(r#"ADDKEY key "KA" album(x) { x -name_of-> n*; }"#)
        .starts_with("OK added"));
    assert!(s.handle("SAME a0 a3").starts_with("YES"));
    let _ = std::fs::remove_dir_all(&dir);
}
