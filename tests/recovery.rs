//! Crash-recovery property tests for the durable store.
//!
//! The contract under test: after a crash that cuts the write-ahead log at
//! an **arbitrary byte offset** (including mid-record) — or flips an
//! arbitrary byte — recovery must produce exactly the state of the
//! *surviving prefix* of accepted updates: the recovered terminal `Eq`
//! equals a from-scratch `chase` of the graph obtained by replaying that
//! prefix, under every chase engine (reference, incremental, parallel).
//! CRC framing means a record is either wholly in or wholly out; nothing
//! in between.

use keys_for_graphs::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const KEYS: &str = r#"
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

/// Base graph the server boots from: albums with names/years drawn from
/// the same pools the random ops use, so deletes can hit base triples and
/// inserts can complete duplicates.
const BASE: &str = r#"
    a0:album name_of "n0"
    a0:album release_year "y0"
    a1:album name_of "n1"
    a1:album release_year "y1"
    a2:album name_of "n2"
    a2:album recorded_by r0:artist
    r0:artist name_of "band0"
    a3:album name_of "n0"
"#;

/// One randomly generated update request against the live index.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `INSERT a{i}:album name_of "n{v}"`
    Name(u8, u8),
    /// `INSERT a{i}:album release_year "y{v}"`
    Year(u8, u8),
    /// `INSERT a{i}:album recorded_by r{j} ; r{j}:artist name_of "band{j}"`
    Link(u8, u8),
    /// `DELETE a{i}:album name_of "n{v}"` (often a miss — then skipped)
    DelName(u8, u8),
    /// `DELETE a{i}:album release_year "y{v}"`
    DelYear(u8, u8),
}

impl Op {
    fn decode(kind: u8, i: u8, v: u8) -> Op {
        match kind % 5 {
            0 => Op::Name(i, v),
            1 => Op::Year(i, v),
            2 => Op::Link(i, v % 2),
            3 => Op::DelName(i, v),
            _ => Op::DelYear(i, v),
        }
    }

    fn is_delete(&self) -> bool {
        matches!(self, Op::DelName(..) | Op::DelYear(..))
    }

    fn text(&self) -> String {
        match *self {
            Op::Name(i, v) => format!("a{i}:album name_of \"n{v}\""),
            Op::Year(i, v) => format!("a{i}:album release_year \"y{v}\""),
            Op::Link(i, j) => {
                format!("a{i}:album recorded_by r{j}:artist\nr{j}:artist name_of \"band{j}\"")
            }
            Op::DelName(i, v) => format!("a{i}:album name_of \"n{v}\""),
            Op::DelYear(i, v) => format!("a{i}:album release_year \"y{v}\""),
        }
    }

    fn specs(&self) -> Vec<TripleSpec> {
        parse_triple_specs(&self.text()).unwrap()
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..5, 0u8..6, 0u8..3).prop_map(|(kind, i, v)| Op::decode(kind, i, v)),
        1..10,
    )
}

/// A fresh data directory per proptest case.
fn casedir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "gk-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Applies the stream to a durable index, returning the accepted ops and
/// the WAL byte offset at which each accepted record *ends*.
fn apply_stream(dur: &Durability, ops: &[Op]) -> (Vec<Op>, Vec<u64>) {
    let (index, report) = EmIndex::open_durable(
        parse_graph(BASE).unwrap(),
        keys_for_graphs::core::KeySet::parse(KEYS).unwrap(),
        keys_for_graphs::core::ChaseEngine::default(),
        dur,
    )
    .unwrap();
    assert!(!report.recovered, "fresh dir must bootstrap");
    let wal = dur.dir.join("wal.log");
    let mut accepted = Vec::new();
    let mut ends = Vec::new();
    let mut last_len = std::fs::metadata(&wal).unwrap().len();
    for op in ops {
        let specs = op.specs();
        let outcome = if op.is_delete() {
            index.delete(&specs)
        } else {
            index.insert(&specs)
        };
        // Misses (deleting an absent triple) and no-ops (re-inserting a
        // present one) never reach the log.
        let _ = outcome;
        let len = std::fs::metadata(&wal).unwrap().len();
        if len > last_len {
            accepted.push(*op);
            ends.push(len);
            last_len = len;
        }
    }
    (accepted, ends)
}

/// Replays the surviving prefix of accepted ops on the base graph — the
/// independent oracle recovery is checked against.
fn oracle_graph(surviving: &[Op]) -> Graph {
    let mut g = parse_graph(BASE).unwrap();
    for op in surviving {
        let specs = op.specs();
        if op.is_delete() {
            let [spec] = specs.as_slice() else {
                unreachable!()
            };
            let s = g.entity_named(&spec.subject).unwrap();
            let p = g.pred(&spec.pred).unwrap();
            let keys_for_graphs::graph::ObjSpec::Value(v) = &spec.object else {
                unreachable!("delete ops target value triples")
            };
            let v = g.value(v).unwrap();
            g = GraphBuilder::from_graph_filtered(&g, |t| {
                !(t.s == s && t.p == p && t.o == Obj::Value(v))
            })
            .freeze();
        } else {
            let mut b = GraphBuilder::from_graph(&g);
            for spec in &specs {
                spec.apply(&mut b);
            }
            g = b.freeze();
        }
    }
    g
}

/// Recovers at every engine and checks the terminal classes against a
/// from-scratch chase of the surviving prefix.
fn assert_recovery_matches(dur: &Durability, surviving: &[Op]) {
    let expect_graph = oracle_graph(surviving);
    let keys = keys_for_graphs::core::KeySet::parse(KEYS).unwrap();
    let compiled = keys.compile(&expect_graph);
    let expected = chase_reference(&expect_graph, &compiled, ChaseOrder::Deterministic)
        .eq
        .classes();
    for engine in [
        ChaseEngine::Reference,
        ChaseEngine::Incremental,
        ChaseEngine::Parallel { threads: 2 },
    ] {
        let (index, report) = EmIndex::recover_durable(dur, engine)
            .unwrap()
            .expect("bootstrap snapshot always exists");
        assert!(report.recovered);
        assert_eq!(
            report.wal_replayed,
            surviving.len(),
            "engine {engine}: exactly the surviving records replay"
        );
        let snap = index.snapshot();
        assert_eq!(
            snap.graph.num_triples(),
            expect_graph.num_triples(),
            "engine {engine}: recovered graph"
        );
        assert_eq!(
            snap.eq.classes(),
            expected,
            "engine {engine}: recovered Eq must equal chase of surviving prefix"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill the WAL at an arbitrary byte offset — including mid-record —
    /// and recover: the surviving whole records define the state exactly.
    #[test]
    fn wal_cut_anywhere_recovers_surviving_prefix(
        ops in ops_strategy(),
        cut_per_mille in 0u64..1001,
    ) {
        let dur = Durability::in_dir(casedir("cut"));
        let (accepted, ends) = apply_stream(&dur, &ops);
        let wal = dur.dir.join("wal.log");
        let full = std::fs::metadata(&wal).unwrap().len();
        let cut = full * cut_per_mille / 1000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let surviving = ends.iter().filter(|&&e| e <= cut).count();
        assert_recovery_matches(&dur, &accepted[..surviving]);
        let _ = std::fs::remove_dir_all(&dur.dir);
    }

    /// Flip one byte anywhere past the WAL header: CRC framing must
    /// invalidate the record containing it and everything after.
    #[test]
    fn wal_bitrot_recovers_prefix_before_corruption(
        ops in ops_strategy(),
        flip_per_mille in 0u64..1000,
    ) {
        let dur = Durability::in_dir(casedir("flip"));
        let (accepted, ends) = apply_stream(&dur, &ops);
        if accepted.is_empty() {
            // Nothing logged: nothing to corrupt below the header.
            assert_recovery_matches(&dur, &accepted);
        } else {
            let wal = dur.dir.join("wal.log");
            let mut bytes = std::fs::read(&wal).unwrap();
            let header = keys_for_graphs::store::WAL_HEADER_LEN;
            let at = header + (bytes.len() as u64 - header) * flip_per_mille / 1000;
            let at = (at as usize).min(bytes.len() - 1);
            bytes[at] ^= 0x40;
            std::fs::write(&wal, &bytes).unwrap();
            // The record whose frame spans `at` dies, with the whole suffix.
            let surviving = ends.iter().filter(|&&e| e <= at as u64).count();
            assert_recovery_matches(&dur, &accepted[..surviving]);
        }
        let _ = std::fs::remove_dir_all(&dur.dir);
    }
}

/// Deterministic end-to-end restart: answers are byte-identical across a
/// snapshot + restart, at every engine.
#[test]
fn restart_answers_are_byte_identical_across_engines() {
    for engine in [
        ChaseEngine::Reference,
        ChaseEngine::Incremental,
        ChaseEngine::Parallel { threads: 2 },
    ] {
        let dur = Durability::in_dir(casedir("identical"));
        let (server, _) = Server::with_durability(
            parse_graph(BASE).unwrap(),
            keys_for_graphs::core::KeySet::parse(KEYS).unwrap(),
            engine,
            &dur,
        )
        .unwrap();
        server.handle(r#"INSERT a2:album release_year "y2" ; a4:album name_of "n2""#);
        server.handle(r#"INSERT a4:album release_year "y2" ; a4:album recorded_by r1:artist"#);
        server.handle(r#"INSERT r1:artist name_of "band0""#);
        server.handle("SNAPSHOT");
        server.handle(r#"DELETE a0:album name_of "n0""#);
        let queries = [
            "SAME a2 a4",
            "SAME a0 a3",
            "DUPS a2",
            "DUPS a0",
            "REP a4",
            "EXPLAIN a2 a4",
            "EXPLAIN r0 r1",
        ];
        let before: Vec<String> = queries.iter().map(|q| server.handle(q)).collect();
        drop(server);

        let (index, report) = EmIndex::recover_durable(&dur, engine).unwrap().unwrap();
        assert!(report.recovered, "{engine}");
        let server2 = Server::from_index(index);
        let after: Vec<String> = queries.iter().map(|q| server2.handle(q)).collect();
        assert_eq!(before, after, "engine {engine}");
        let _ = std::fs::remove_dir_all(&dur.dir);
    }
}
