//! Integration tests reproducing the paper's worked examples end-to-end:
//! Example 1 (the six keys of Fig. 1), Example 5 (violations), Example 7
//! (chase results on G1/G2), Example 8 (EM_MR round structure) and
//! Example 10 (EM_VC message propagation outcome).

use keys_for_graphs::prelude::*;

/// Fig. 2, G1 — the music fragment.
fn g1() -> Graph {
    parse_graph(
        r#"
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb2:album  recorded_by   art2:artist
        art2:artist name_of       "The Beatles"
        alb3:album  name_of       "Anthology 2"
        alb3:album  recorded_by   art3:artist
        art3:artist name_of       "John Farnham"
        "#,
    )
    .unwrap()
}

/// Fig. 2, G2 — the company fragment (per Example 7's witnesses).
fn g2() -> Graph {
    parse_graph(
        r#"
        com0:company name_of   "AT&T"
        com1:company name_of   "AT&T"
        com2:company name_of   "AT&T"
        com3:company name_of   "SBC"
        com4:company name_of   "AT&T"
        com5:company name_of   "AT&T"
        com0:company parent_of com1:company
        com0:company parent_of com2:company
        com0:company parent_of com3:company
        com1:company parent_of com4:company
        com2:company parent_of com5:company
        com3:company parent_of com4:company
        com3:company parent_of com5:company
        "#,
    )
    .unwrap()
}

/// The six keys of Fig. 1 in the DSL.
const FIG1_KEYS: &str = r#"
    key "Q1" album(x)  { x -name_of-> n*; x -recorded_by-> a:artist; }
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
    key "Q4" company(x) {
        x -name_of-> n*;
        ~p:company -name_of-> n*;
        ~p:company -parent_of-> x;
        q:company -parent_of-> x;
    }
    key "Q5" company(x) {
        x -name_of-> n*;
        ~p:company -name_of-> n*;
        ~p:company -parent_of-> x;
        ~p:company -parent_of-> d:company;
    }
    key "Q6" street(x) { x -zip_code-> z*; x -nation_of-> "UK"; }
"#;

fn e(g: &Graph, n: &str) -> EntityId {
    g.entity_named(n).unwrap()
}

fn pair(g: &Graph, a: &str, b: &str) -> (EntityId, EntityId) {
    gk_core::norm(e(g, a), e(g, b))
}

#[test]
fn example1_key_taxonomy() {
    // Example 6: Q1, Q3, Q4, Q5 are recursive; Q2, Q6 are value-based.
    let keys = parse_keys(FIG1_KEYS).unwrap();
    let recursive: Vec<bool> = keys.iter().map(|k| k.is_recursive()).collect();
    assert_eq!(recursive, vec![true, false, true, true, true, false]);
    // Q1/Q3 are mutually recursive: album needs artist, artist needs album.
    let ks = KeySet::new(keys).unwrap();
    assert!(ks.longest_chain() >= 2);
}

#[test]
fn example5_g1_violations_surface_through_recursion() {
    let g = g1();
    let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
    // Under plain node identity only Q2 is violated (alb1/alb2)...
    let direct = key_violations(&g, &keys);
    assert_eq!(direct.len(), 1);
    assert_eq!(direct[0].key_name, "Q2");
    assert_eq!(direct[0].pair, pair(&g, "alb1", "alb2"));
    // ...but the chase also exposes art1/art2 (mutual recursion).
    let all = set_violations(&g, &keys);
    assert_eq!(
        all,
        vec![pair(&g, "alb1", "alb2"), pair(&g, "art1", "art2")]
    );
}

#[test]
fn example5_g2_violates_q4() {
    let g = g2();
    let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
    let direct = key_violations(&g, &keys);
    // com4/com5 by Q4 and com1/com2 by Q5 fire already under Eq0.
    let pairs: Vec<_> = direct.iter().map(|v| v.pair).collect();
    assert!(pairs.contains(&pair(&g, "com4", "com5")));
    assert!(pairs.contains(&pair(&g, "com1", "com2")));
}

#[test]
fn example7_chase_on_g1() {
    let g = g1();
    let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
    let r = chase_reference(&g, &keys, ChaseOrder::Deterministic);
    assert_eq!(
        r.identified_pairs(),
        vec![pair(&g, "alb1", "alb2"), pair(&g, "art1", "art2")]
    );
    // Albums strictly precede artists in chase order (Q3 is recursive).
    let steps: Vec<_> = r.steps.iter().map(|s| s.pair).collect();
    let alb = steps
        .iter()
        .position(|&p| p == pair(&g, "alb1", "alb2"))
        .unwrap();
    let art = steps
        .iter()
        .position(|&p| p == pair(&g, "art1", "art2"))
        .unwrap();
    assert!(alb < art);
}

#[test]
fn example7_chase_on_g2() {
    let g = g2();
    let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
    let r = chase_reference(&g, &keys, ChaseOrder::Deterministic);
    assert_eq!(
        r.identified_pairs(),
        vec![pair(&g, "com1", "com2"), pair(&g, "com4", "com5")]
    );
}

#[test]
fn example8_mapreduce_round_structure() {
    // With Σ = {Q2, Q3}: round 1 identifies the albums, round 2 the
    // artists, round 3 observes the fixpoint (Example 8's three rounds).
    let g = g1();
    let keys = KeySet::parse(
        r#"
        key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
        key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
        "#,
    )
    .unwrap()
    .compile(&g);
    let out = em_mr(&g, &keys, 3, MrVariant::Base);
    assert_eq!(out.report.rounds, 3);
    assert_eq!(
        out.identified_pairs(),
        vec![pair(&g, "alb1", "alb2"), pair(&g, "art1", "art2")]
    );
}

#[test]
fn example10_vertex_centric_on_g1() {
    let g = g1();
    let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
    for variant in [VcVariant::Base, VcVariant::Opt { k: 4 }] {
        let out = em_vc(&g, &keys, 3, variant);
        assert_eq!(
            out.identified_pairs(),
            vec![pair(&g, "alb1", "alb2"), pair(&g, "art1", "art2")],
            "{variant:?}"
        );
        assert!(out.report.messages > 0);
    }
}

#[test]
fn q6_constant_keys_respect_the_condition() {
    // Q6 holds for UK streets only: same zip in the US must not merge.
    let g = parse_graph(
        r#"
        s1:street zip_code "EH8 9AB"
        s1:street nation_of "UK"
        s2:street zip_code "EH8 9AB"
        s2:street nation_of "UK"
        s3:street zip_code "10001"
        s3:street nation_of "US"
        s4:street zip_code "10001"
        s4:street nation_of "US"
        "#,
    )
    .unwrap();
    let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
    let r = chase_reference(&g, &keys, ChaseOrder::Deterministic);
    assert_eq!(r.identified_pairs(), vec![pair(&g, "s1", "s2")]);
}

#[test]
fn all_six_algorithms_agree_on_both_paper_graphs() {
    for g in [g1(), g2()] {
        let keys = KeySet::parse(FIG1_KEYS).unwrap().compile(&g);
        let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
        assert_eq!(
            em_mr(&g, &keys, 2, MrVariant::Vf2).identified_pairs(),
            expected
        );
        assert_eq!(
            em_mr(&g, &keys, 2, MrVariant::Base).identified_pairs(),
            expected
        );
        assert_eq!(
            em_mr(&g, &keys, 2, MrVariant::Opt).identified_pairs(),
            expected
        );
        assert_eq!(
            em_vc(&g, &keys, 2, VcVariant::Base).identified_pairs(),
            expected
        );
        assert_eq!(
            em_vc(&g, &keys, 2, VcVariant::Opt { k: 4 }).identified_pairs(),
            expected
        );
        assert_eq!(
            em_mr_sim(&g, &keys, 4, MrVariant::Base).identified_pairs(),
            expected
        );
        assert_eq!(
            em_vc_sim(&g, &keys, 4, VcVariant::Base).identified_pairs(),
            expected
        );
    }
}
