//! End-to-end pipeline tests across crates: generate → serialize → reload →
//! normalize → match → prove → verify; plus edge-case key semantics and the
//! tree-shaped special case of Proposition 5.

use gk_datagen::{generate, GenConfig};
use keys_for_graphs::core::{normalize_graph, normalize_keys, prove, verify, write_keys, AlphaNum};
use keys_for_graphs::graph::{is_forest, write_graph};
use keys_for_graphs::prelude::*;

#[test]
fn generate_save_load_match_prove() {
    // Generate a workload, round-trip it through the text formats, and run
    // the whole stack on the reloaded copy.
    let w = generate(&GenConfig::dbpedia().with_scale(0.05).with_keys(9));
    let graph_text = write_graph(&w.graph);
    let keys_text = write_keys(w.keys.keys());

    let g = parse_graph(&graph_text).expect("serialized graph reparses");
    let ks = KeySet::parse(&keys_text).expect("serialized keys reparse");
    assert_eq!(g.num_triples(), w.graph.num_triples());

    let compiled = ks.compile(&g);
    let out = em_vc(&g, &compiled, 2, VcVariant::Opt { k: 4 });
    // Ids moved across serialization, so compare by entity labels.
    let label_pairs = |pairs: &[(EntityId, EntityId)], gr: &Graph| -> Vec<(String, String)> {
        let mut v: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (gr.entity_label(a), gr.entity_label(b));
                if x <= y {
                    (x, y)
                } else {
                    (y, x)
                }
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        label_pairs(&out.identified_pairs(), &g),
        label_pairs(&w.truth, &w.graph)
    );

    // Every identified pair has a verifiable proof.
    for (a, b) in out.identified_pairs().into_iter().take(10) {
        let p = prove(&g, &compiled, a, b).expect("identified pairs are provable");
        verify(&g, &compiled, &p).expect("proof verifies");
    }
}

#[test]
fn similarity_pipeline() {
    // Dirty data: spelling variants that only merge under normalization.
    let g = parse_graph(
        r#"
        p1:person username "Ada.Lovelace"
        p1:person works_at u1:employer
        u1:employer name_of "ACME Corp."
        p2:person username "ada lovelace"
        p2:person works_at u2:employer
        u2:employer name_of "acme corp"
        "#,
    )
    .unwrap();
    let keys = KeySet::parse(
        r#"
        key "P" person(x)   { x -username-> u*; x -works_at-> e:employer; }
        key "E" employer(x) { x -name_of-> n*; }
        "#,
    )
    .unwrap();

    // Exact matching finds nothing.
    let exact = chase_reference(&g, &keys.compile(&g), ChaseOrder::Deterministic);
    assert!(exact.identified_pairs().is_empty());

    // Normalized matching cascades: employers merge (value-based), then
    // the persons merge through the recursive key.
    let ng = normalize_graph(&g, &AlphaNum);
    let nk = normalize_keys(&keys, &AlphaNum);
    let compiled = nk.compile(&ng);
    let fuzzy = chase_reference(&ng, &compiled, ChaseOrder::Deterministic);
    assert_eq!(fuzzy.identified_pairs().len(), 2);
    let p1 = ng.entity_named("p1").unwrap();
    let p2 = ng.entity_named("p2").unwrap();
    assert!(
        fuzzy.eq.same(p1, p2),
        "persons merge through the employer merge"
    );
}

#[test]
fn constant_only_key_identifies_within_the_condition() {
    // A key that is *only* a constant condition identifies every pair of
    // entities satisfying it — degenerate but legal semantics.
    let g = parse_graph(
        r#"
        a:flagged tag "hot"
        b:flagged tag "hot"
        c:flagged tag "cold"
        "#,
    )
    .unwrap();
    let keys = KeySet::parse(r#"key "K" flagged(x) { x -tag-> "hot"; }"#).unwrap();
    let r = chase_reference(&g, &keys.compile(&g), ChaseOrder::Deterministic);
    let a = g.entity_named("a").unwrap();
    let b = g.entity_named("b").unwrap();
    assert_eq!(r.identified_pairs(), vec![gk_core::norm(a, b)]);
}

#[test]
fn shared_value_variable_across_two_triples() {
    // n* appears in two triples: both predicates must reach the SAME value
    // node (§2.1: same name ⇒ same pattern node).
    let g = parse_graph(
        r#"
        a:t p "x"
        a:t q "x"
        b:t p "x"
        b:t q "x"
        c:t p "x"
        c:t q "y"   # different q-value: must not merge with a/b
        "#,
    )
    .unwrap();
    let keys = KeySet::parse(r#"key "K" t(x) { x -p-> n*; x -q-> n*; }"#).unwrap();
    let r = chase_reference(&g, &keys.compile(&g), ChaseOrder::Deterministic);
    let a = g.entity_named("a").unwrap();
    let b = g.entity_named("b").unwrap();
    assert_eq!(r.identified_pairs(), vec![gk_core::norm(a, b)]);
}

#[test]
fn tree_case_proposition5() {
    // A tree-shaped catalogue: matching works and the tree check holds.
    let g = parse_graph(
        r#"
        root:cat name_of "electronics"
        a:item name_of "cable"
        b:item name_of "cable"
        c:item name_of "router"
        "#,
    )
    .unwrap();
    assert!(is_forest(&g), "no undirected cycles");
    // One value-based key on items — note the shared "cable" value makes
    // the *graph* non-tree if both edges existed; here names are attribute
    // edges to shared value nodes, so the forest check is on the data.
    let keys = KeySet::parse(r#"key "K" item(x) { x -name_of-> n*; }"#).unwrap();
    let r = chase_reference(&g, &keys.compile(&g), ChaseOrder::Deterministic);
    assert_eq!(r.identified_pairs().len(), 1);
}

#[test]
fn inactive_keys_are_reported_not_fatal() {
    let g = parse_graph("a:t p \"v\"").unwrap();
    let keys = KeySet::parse(
        r#"
        key "Active"  t(x) { x -p-> n*; }
        key "Ghost"   u(x) { x -q-> n*; }   // type u, pred q: absent
        "#,
    )
    .unwrap();
    let compiled = keys.compile(&g);
    assert_eq!(compiled.len(), 1);
    assert_eq!(compiled.skipped, vec!["Ghost".to_string()]);
    // Matching still runs fine.
    let out = em_mr(&g, &compiled, 2, MrVariant::Opt);
    assert!(out.identified_pairs().is_empty());
}

#[test]
fn deep_dependency_chain_cascades() {
    // c = 4: a chain of five duplicate pairs, each unlocked by the next.
    let cfg = GenConfig::synthetic()
        .with_keys(5)
        .with_chain(4)
        .with_radius(1)
        .with_scale(0.2);
    let w = generate(&cfg);
    assert_eq!(w.keys.longest_chain(), 4);
    let keys = w.keys.compile(&w.graph);
    let expected = chase_reference(&w.graph, &keys, ChaseOrder::Deterministic);
    assert_eq!(expected.identified_pairs(), w.truth);
    // The chase needs at least c+1 rounds; EM_MR mirrors that.
    assert!(expected.rounds >= 5);
    let mr = em_mr(&w.graph, &keys, 2, MrVariant::Base);
    assert!(mr.report.rounds >= 5, "rounds = {}", mr.report.rounds);
    assert_eq!(mr.identified_pairs(), w.truth);
    // The asynchronous algorithm needs no rounds at all.
    let vc = em_vc(&w.graph, &keys, 2, VcVariant::Base);
    assert_eq!(vc.identified_pairs(), w.truth);
    assert_eq!(vc.report.rounds, 1);
}

#[test]
fn transitive_closure_fires_dependencies() {
    // Regression test for a subtle completeness hazard in the optimized
    // algorithms: a recursive key's prerequisite pair can enter Eq *only
    // through the transitive closure* of other merges, while never being a
    // pairable candidate itself. The dependency watcher must still fire.
    //
    //   ua --p1="1"     uc --p1="1",p2="2"     ub --p2="2"
    //   (ua,uc) by KU1; (uc,ub) by KU2; (ua,ub) only via TC —
    //   and (ua,ub) is pairable by NEITHER key (no shared attribute).
    //   x1 -r-> ua, x2 -r-> ub: (x1,x2) needs exactly (ua,ub) ∈ Eq.
    let g = parse_graph(
        r#"
        ua:u p1 "1"
        uc:u p1 "1"
        uc:u p2 "2"
        ub:u p2 "2"
        x1:t n "nm"
        x2:t n "nm"
        x1:t r ua:u
        x2:t r ub:u
        "#,
    )
    .unwrap();
    let keys = KeySet::parse(
        r#"
        key "KT"  t(x) { x -n-> v*;  x -r-> y:u; }
        key "KU1" u(x) { x -p1-> v*; }
        key "KU2" u(x) { x -p2-> v*; }
        "#,
    )
    .unwrap()
    .compile(&g);
    let expected = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
    let x1 = g.entity_named("x1").unwrap();
    let x2 = g.entity_named("x2").unwrap();
    assert!(
        expected.contains(&gk_core::norm(x1, x2)),
        "reference must identify (x1, x2): {expected:?}"
    );
    // All optimized variants must agree — they rely on the dep watcher.
    assert_eq!(
        em_mr(&g, &keys, 2, MrVariant::Opt).identified_pairs(),
        expected
    );
    assert_eq!(
        em_vc(&g, &keys, 2, VcVariant::Base).identified_pairs(),
        expected
    );
    assert_eq!(
        em_vc(&g, &keys, 2, VcVariant::Opt { k: 1 }).identified_pairs(),
        expected
    );
}

#[test]
fn run_reports_carry_substrate_metrics() {
    let w = generate(&GenConfig::google().with_scale(0.05).with_keys(6));
    let keys = w.keys.compile(&w.graph);
    let mr = em_mr(&w.graph, &keys, 2, MrVariant::Base);
    assert!(mr.report.shuffled_records > 0, "MapReduce must shuffle");
    assert!(mr.report.rounds >= 2);
    let vc = em_vc(&w.graph, &keys, 2, VcVariant::Base);
    assert!(vc.report.messages > 0, "vertex-centric must message");
    assert!(vc.report.extra("gp_nodes").is_some());
    let sim = em_vc_sim(&w.graph, &keys, 8, VcVariant::Base);
    assert!(sim.report.sim_seconds > 0.0);
    assert_eq!(sim.identified_pairs(), vc.identified_pairs());
}
