//! Integration tests for the resident entity-resolution service: the full
//! query → ingest → incremental-advance loop in-process, and concurrent
//! correctness under a streaming insert (readers must see either the
//! pre-update or the post-update `Eq`, never a torn mixture).

use keys_for_graphs::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const KEYS: &str = r#"
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

/// A catalog with one planted duplicate pair (a1/a2, resolved at startup)
/// and one latent pair (b1/b2 + their artists r1/r2) that only becomes a
/// duplicate once release years stream in.
const CATALOG: &str = r#"
    a1:album name_of "Anthology 2"
    a1:album release_year "1996"
    a2:album name_of "Anthology 2"
    a2:album release_year "1996"
    b1:album name_of "Let It Be"
    b1:album recorded_by r1:artist
    r1:artist name_of "The Beatles"
    b2:album name_of "Let It Be"
    b2:album recorded_by r2:artist
    r2:artist name_of "The Beatles"
"#;

const MERGING_INSERT: &str =
    r#"INSERT b1:album release_year "1970" ; b2:album release_year "1970""#;

fn catalog_server() -> Server {
    Server::new(parse_graph(CATALOG).unwrap(), KeySet::parse(KEYS).unwrap())
}

#[test]
fn query_ingest_query_loop_via_incremental_path() {
    let server = catalog_server();

    // 1. The planted duplicate is resolved by the startup chase …
    assert!(server.handle("SAME a1 a2").starts_with("YES"));
    // … with a checkable proof.
    let proof = server.handle("EXPLAIN a1 a2");
    assert!(proof.starts_with("PROOF"), "{proof}");
    assert!(proof.contains("by Q2"), "{proof}");
    assert!(proof.contains("verified"), "{proof}");

    // 2. The latent pair is not yet identified.
    assert!(server.handle("SAME b1 b2").starts_with("NO"));
    assert!(server.handle("SAME r1 r2").starts_with("NO"));

    // 3. Streaming inserts complete Q2's witness for b1/b2.
    let resp = server.handle(MERGING_INSERT);
    assert!(resp.starts_with("OK mode=incremental"), "{resp}");

    // 4. The new duplicates are visible, including the recursive cascade
    //    through Q3 to the artists.
    assert!(server.handle("SAME b1 b2").starts_with("YES"));
    assert!(server.handle("SAME r1 r2").starts_with("YES"));
    assert_eq!(server.handle("DUPS b1"), "DUPS b1: b2");
    let proof2 = server.handle("EXPLAIN r1 r2");
    assert!(proof2.contains("by Q3"), "{proof2}");

    // 5. And STATS attributes the advance to the incremental path — the
    //    startup chase was the only full chase that ever ran.
    let stats = server.handle("STATS");
    assert!(stats.contains("incremental_advances=1"), "{stats}");
    assert!(stats.contains("full_rechases=0"), "{stats}");
    assert!(stats.contains("version=1"), "{stats}");
}

#[test]
fn concurrent_readers_see_no_torn_state_during_insert() {
    // The merging insert identifies TWO pairs atomically: b1<=>b2 (Q2) and,
    // through recursion, r1<=>r2 (Q3). Both flips commit in one snapshot
    // swap, so every reader — 8 threads of mixed SAME/DUPS traffic racing
    // the writer — must observe one of exactly two worlds:
    //
    //   pre-update:  SAME b1 b2 = NO,  DUPS r1 = NONE …
    //   post-update: SAME b1 b2 = YES, DUPS r1 = r2 …
    //
    // and, because versions only advance, a thread that has seen the
    // post-update world may never see the pre-update world afterwards.
    // A torn read (b-pair merged but r-pair not, or a post->pre flip)
    // panics the reader thread and fails the test at join.
    const READERS: usize = 8;
    const ITERS: usize = 300;

    let server = Arc::new(catalog_server());
    let start = Barrier::new(READERS + 1);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let server = Arc::clone(&server);
            let start = &start;
            let done = &done;
            scope.spawn(move || {
                // Classify one response as pre(false)/post(true) state.
                let classify = |req: &str, resp: &str| -> bool {
                    match (req, resp) {
                        (r, s) if r.starts_with("SAME") && s.starts_with("YES") => true,
                        (r, s) if r.starts_with("SAME") && s.starts_with("NO") => false,
                        ("DUPS b1", "DUPS b1: b2") => true,
                        ("DUPS b1", s) if s.starts_with("NONE") => false,
                        ("DUPS r1", "DUPS r1: r2") => true,
                        ("DUPS r1", s) if s.starts_with("NONE") => false,
                        (r, s) => panic!("reader {reader}: invalid answer {s:?} to {r:?}"),
                    }
                };
                let queries = ["SAME b1 b2", "SAME r1 r2", "DUPS b1", "DUPS r1"];
                start.wait();
                let mut seen_post = false;
                for i in 0..ITERS {
                    let req = queries[(i + reader) % queries.len()];
                    let post = classify(req, &server.handle(req));
                    if seen_post && !post {
                        panic!("reader {reader}: post-update state regressed at iter {i}");
                    }
                    seen_post |= post;
                    if done.load(Ordering::Relaxed) && i > ITERS / 2 {
                        break;
                    }
                }
            });
        }

        // The writer: one batched insert racing the readers.
        let server_w = Arc::clone(&server);
        start.wait();
        let resp = server_w.handle(MERGING_INSERT);
        assert!(resp.starts_with("OK mode=incremental"), "{resp}");
        done.store(true, Ordering::Relaxed);
    });

    // Steady state after the race: both pairs merged, one incremental
    // advance, no full re-chase.
    assert!(server.handle("SAME b1 b2").starts_with("YES"));
    assert!(server.handle("SAME r1 r2").starts_with("YES"));
    let stats = server.handle("STATS");
    assert!(stats.contains("incremental_advances=1"), "{stats}");
    assert!(stats.contains("full_rechases=0"), "{stats}");
}

#[test]
fn concurrent_tcp_clients_with_mixed_traffic() {
    // The same race through real sockets and the worker pool: 8 TCP
    // clients issue SAME/DUPS while one client INSERTs.
    use keys_for_graphs::server::{request, serve};

    let server = Arc::new(catalog_server());
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", 4).unwrap();
    let addr = handle.addr().to_string();

    let barrier = Barrier::new(9);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let addr = addr.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let mut seen_post = false;
                for i in 0..40 {
                    let req = if (i + t) % 2 == 0 {
                        "SAME b1 b2"
                    } else {
                        "SAME r1 r2"
                    };
                    let resp = request(&addr, req).unwrap();
                    let post = resp.starts_with("YES");
                    assert!(
                        post || resp.starts_with("NO"),
                        "client {t}: unexpected answer {resp:?}"
                    );
                    if seen_post {
                        assert!(post, "client {t}: regressed at iter {i}");
                    }
                    seen_post |= post;
                }
            });
        }
        let addr2 = addr.clone();
        let barrier = &barrier;
        scope.spawn(move || {
            barrier.wait();
            let resp = request(&addr2, MERGING_INSERT).unwrap();
            assert!(resp.starts_with("OK"), "{resp}");
        });
    });

    assert!(request(&addr, "SAME b1 b2").unwrap().starts_with("YES"));
    handle.stop();
}

#[test]
fn blank_lines_are_skipped_and_framing_stays_aligned() {
    // Piped input ("query --stdin" with a trailing newline, sloppy shell
    // heredocs) interleaves blank lines with requests. A blank line must
    // produce NO response paragraph — answering ERR would misalign a
    // pipelined client that matches responses to requests by counting
    // paragraphs, and would inflate gk_request_errors_total.
    use keys_for_graphs::server::serve;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = Arc::new(catalog_server());
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", 1).unwrap();

    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.write_all(b"SAME a1 a2\n\n\nSTATS\n\n").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // Exactly two response paragraphs come back, in request order, with
    // nothing in between for the three blank lines.
    let mut read_paragraph = || {
        let mut para = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server closed");
            if line.trim_end_matches(['\r', '\n']).is_empty() {
                return para;
            }
            para.push_str(&line);
        }
    };
    assert!(read_paragraph().starts_with("YES"));
    assert!(read_paragraph().starts_with("STATS"));

    // The error counter never moved: blank lines were skipped, not parsed.
    let metrics = server.handle("METRICS");
    assert!(metrics.contains("gk_request_errors_total 0"), "{metrics}");
    handle.stop();
}

#[test]
fn one_shot_request_times_out_against_a_silent_server() {
    // A listener that accepts and then never answers models a wedged
    // server. Before the timeout fix, `request` blocked forever here.
    use keys_for_graphs::server::request_with_timeout;
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        std::thread::sleep(std::time::Duration::from_secs(5));
        drop(conn);
    });

    let t0 = std::time::Instant::now();
    let err = request_with_timeout(&addr, "STATS", std::time::Duration::from_millis(200))
        .expect_err("read against a silent server must time out");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "{err:?}"
    );
    assert!(t0.elapsed() < std::time::Duration::from_secs(3));
    drop(hold); // detach: the holder thread finishes on its own clock
}
