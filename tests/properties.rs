//! Property-based tests over random graphs, random keys and generated
//! workloads: algorithm agreement, Church–Rosser, pairing soundness,
//! data locality, tour invariants, DSL/text round-trips.

use gk_datagen::{generate, GenConfig};
use keys_for_graphs::core::{candidate_pairs, write_keys, Tour};
use keys_for_graphs::isomorph::{
    eval_pair, eval_pair_enumerate, pairing_at, IdentityEq, MatchScope,
};
use keys_for_graphs::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random raw graphs + random keys
// ---------------------------------------------------------------------------

/// A random triple spec over a tiny alphabet: subject entity index, a
/// predicate, and either an object entity index or a value index.
#[derive(Clone, Debug)]
struct RawTriple {
    s: u8,
    p: u8,
    obj_entity: bool,
    o: u8,
}

fn raw_triples() -> impl Strategy<Value = Vec<RawTriple>> {
    prop::collection::vec(
        (0u8..10, 0u8..4, any::<bool>(), 0u8..10).prop_map(|(s, p, obj_entity, o)| RawTriple {
            s,
            p,
            obj_entity,
            o,
        }),
        1..24,
    )
}

/// Builds a graph from raw triples: entity i has type `t{i % 3}`.
fn build_graph(raw: &[RawTriple]) -> Graph {
    let mut b = GraphBuilder::new();
    let ents: Vec<EntityId> = (0..10)
        .map(|i| b.entity(&format!("e{i}"), &format!("t{}", i % 3)))
        .collect();
    for t in raw {
        let s = ents[t.s as usize];
        let p = format!("p{}", t.p);
        if t.obj_entity {
            b.link(s, &p, ents[t.o as usize]);
        } else {
            b.attr(s, &p, &format!("v{}", t.o % 6));
        }
    }
    b.freeze()
}

/// A small pool of structurally varied keys over the same alphabet; the
/// strategy picks a subset.
fn key_pool() -> Vec<Key> {
    let dsl = r#"
        key "A" t0(x) { x -p0-> n*; }
        key "B" t0(x) { x -p0-> n*; x -p1-> m*; }
        key "C" t1(x) { x -p1-> n*; x -p2-> y:t2; }
        key "D" t2(x) { x -p2-> n*; z:t1 -p2-> x; }
        key "E" t0(x) { x -p0-> n*; x -p3-> ~w:t1; }
        key "F" t1(x) { x -p0-> w:t1; w:t1 -p0-> x; }
        key "G" t2(x) { x -p1-> "v1"; x -p2-> n*; }
    "#;
    parse_keys(dsl).unwrap()
}

fn key_subset() -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0usize..7, 1..4).prop_map(|idx| {
        let pool = key_pool();
        let mut picked = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in idx {
            if seen.insert(i) {
                picked.push(pool[i].clone());
            }
        }
        picked
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel algorithms all compute exactly chase(G, Σ)
    /// (Theorems 6/10), on arbitrary graphs and key subsets.
    #[test]
    fn algorithms_agree_on_random_graphs(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        let expected = chase_reference(&g, &cks, ChaseOrder::Deterministic).identified_pairs();
        prop_assert_eq!(em_mr(&g, &cks, 2, MrVariant::Vf2).identified_pairs(), expected.clone());
        prop_assert_eq!(em_mr(&g, &cks, 3, MrVariant::Base).identified_pairs(), expected.clone());
        prop_assert_eq!(em_mr(&g, &cks, 2, MrVariant::Opt).identified_pairs(), expected.clone());
        prop_assert_eq!(em_vc(&g, &cks, 3, VcVariant::Base).identified_pairs(), expected.clone());
        prop_assert_eq!(
            em_vc(&g, &cks, 2, VcVariant::Opt { k: 2 }).identified_pairs(),
            expected
        );
    }

    /// Church–Rosser (Prop. 1): terminal chase results are order-invariant.
    /// On failure, the triple list is ddmin-shrunk to a minimal
    /// counterexample before panicking (see `order_divergence`).
    #[test]
    fn chase_is_church_rosser(raw in raw_triples(), keys in key_subset(), seed in any::<u64>()) {
        let cks = KeySet::new(keys.clone()).unwrap();
        if let Some(report) = order_divergence(&raw, &cks, seed) {
            panic!("{report}");
        }
    }

    /// The tentpole oracle: the partitioned multi-threaded chase — at 1, 2
    /// and 8 worker threads, in both candidate modes — and every other
    /// engine (reference, EM_MR, EM_VC) compute identical terminal EqRel
    /// classes on arbitrary graphs and key subsets (Prop. 1 + Theorems
    /// 6/10 as an executable property).
    #[test]
    fn chase_parallel_agrees_with_every_engine(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        let expected = chase_reference(&g, &cks, ChaseOrder::Deterministic).eq.classes();
        for threads in [1usize, 2, 8] {
            for mode in [CandidateMode::Blocked, CandidateMode::TypePairs] {
                let opts = ParallelOpts { threads, mode, ..Default::default() };
                let got = chase_parallel(&g, &cks, opts).eq.classes();
                prop_assert_eq!(&got, &expected, "threads={} mode={:?}", threads, mode);
            }
        }
        prop_assert_eq!(em_mr(&g, &cks, 3, MrVariant::Base).eq.classes(), expected.clone());
        prop_assert_eq!(em_vc(&g, &cks, 3, VcVariant::Base).eq.classes(), expected);
    }

    /// The parallel chase is itself order-independent: shuffled candidate
    /// orders and different shard counts never change the terminal classes.
    #[test]
    fn chase_parallel_is_order_independent(
        raw in raw_triples(),
        keys in key_subset(),
        seed in any::<u64>(),
        threads in 1usize..6,
    ) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        let base = chase_parallel(&g, &cks, ParallelOpts::default()).eq.classes();
        let opts = ParallelOpts {
            threads,
            order: ChaseOrder::Shuffled(seed),
            ..Default::default()
        };
        prop_assert_eq!(chase_parallel(&g, &cks, opts).eq.classes(), base);
    }

    /// Pairing is a *sound* filter (Prop. 9a): any pair certified by a key
    /// under Eq0 is pairable by that key.
    #[test]
    fn pairing_is_necessary(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for &(a, b) in candidate_pairs(&g, &cks, CandidateMode::TypePairs).iter() {
            let t = g.entity_type(a);
            for &ki in cks.keys_on(t) {
                let q = &cks.keys[ki].pattern;
                if eval_pair(&g, q, a, b, &IdentityEq, MatchScope::whole_graph()) {
                    prop_assert!(
                        pairing_at(&g, q, a, b, None, None).pairable(q, a, b),
                        "identified but unpairable: {:?} {:?} key {}", a, b, ki
                    );
                }
            }
        }
    }

    /// The guided matcher and the enumerate-all baseline agree key-by-key.
    #[test]
    fn guided_equals_enumerate(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for &(a, b) in candidate_pairs(&g, &cks, CandidateMode::TypePairs).iter().take(40) {
            let t = g.entity_type(a);
            for &ki in cks.keys_on(t) {
                let q = &cks.keys[ki].pattern;
                let guided = eval_pair(&g, q, a, b, &IdentityEq, MatchScope::whole_graph());
                let brute =
                    eval_pair_enumerate(&g, q, a, b, &IdentityEq, None, None, usize::MAX);
                prop_assert_eq!(guided, brute, "pair {:?}/{:?} key {}", a, b, ki);
            }
        }
    }

    /// Data locality (§4.1): matching within the d-neighborhoods equals
    /// matching against the whole graph.
    #[test]
    fn d_neighborhood_locality(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for &(a, b) in candidate_pairs(&g, &cks, CandidateMode::TypePairs).iter().take(40) {
            let t = g.entity_type(a);
            let d = cks.radius_of_type(t);
            let h1 = d_neighborhood(&g, a, d);
            let h2 = d_neighborhood(&g, b, d);
            for &ki in cks.keys_on(t) {
                let q = &cks.keys[ki].pattern;
                let whole = eval_pair(&g, q, a, b, &IdentityEq, MatchScope::whole_graph());
                let local = eval_pair(&g, q, a, b, &IdentityEq, MatchScope::new(&h1, &h2));
                prop_assert_eq!(whole, local);
            }
        }
    }

    /// Tours are closed walks from the anchor covering every triple, of
    /// length exactly 2·|Q| (Lemma 11's bound).
    #[test]
    fn tours_cover_patterns(keys in key_subset(), raw in raw_triples()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for ck in &cks.keys {
            let tour = Tour::build(&ck.pattern);
            prop_assert_eq!(tour.len(), 2 * ck.pattern.size());
            let mut at = ck.pattern.anchor();
            let mut covered = vec![false; ck.pattern.size()];
            for (i, step) in tour.steps().iter().enumerate() {
                let tri = ck.pattern.triples()[step.triple as usize];
                let (from, to) = if step.forward { (tri.s, tri.o) } else { (tri.o, tri.s) };
                prop_assert_eq!(from, at);
                covered[step.triple as usize] = true;
                at = tour.slot_after(&ck.pattern, i);
                prop_assert_eq!(at, to);
            }
            prop_assert_eq!(at, ck.pattern.anchor());
            prop_assert!(covered.into_iter().all(|c| c));
        }
    }

    /// d-neighborhoods grow monotonically with d and are undirected.
    #[test]
    fn neighborhoods_monotone(raw in raw_triples(), e in 0u8..10) {
        let g = build_graph(&raw);
        let ent = g.entity_named(&format!("e{e}")).unwrap();
        let mut prev = 0;
        for d in 0..5 {
            let n = d_neighborhood(&g, ent, d).len();
            prop_assert!(n >= prev);
            prev = n;
        }
    }

    /// The key DSL round-trips: write → parse → identical keys.
    #[test]
    fn dsl_roundtrip(keys in key_subset()) {
        let text = write_keys(&keys);
        let again = parse_keys(&text).unwrap();
        prop_assert_eq!(keys, again);
    }
}

/// Checks order-independence of the reference chase on one input; on
/// divergence, returns a report carrying a ddmin-minimized counterexample
/// (fewest triples still diverging, then fewest keys) so the failing seed
/// is immediately debuggable.
fn order_divergence(raw: &[RawTriple], keys: &KeySet, seed: u64) -> Option<String> {
    let diverges = |raw: &[RawTriple], keys: &[Key]| -> bool {
        let g = build_graph(raw);
        let Ok(ks) = KeySet::new(keys.to_vec()) else {
            return false;
        };
        let cks = ks.compile(&g);
        let a = chase_reference(&g, &cks, ChaseOrder::Deterministic).identified_pairs();
        let b = chase_reference(&g, &cks, ChaseOrder::Shuffled(seed)).identified_pairs();
        a != b
    };
    if !diverges(raw, keys.keys()) {
        return None;
    }
    // Shrink triples first (the larger axis), then the key set.
    let min_raw = proptest::shrink::minimize_vec(raw, |r| diverges(r, keys.keys()));
    let min_keys = proptest::shrink::minimize_vec(keys.keys(), |k| diverges(&min_raw, k));
    let g = build_graph(&min_raw);
    Some(format!(
        "chase order-dependence! seed={seed}\n\
         minimal graph ({} of {} triples):\n{}\n\
         minimal keys ({} of {}):\n{}",
        min_raw.len(),
        raw.len(),
        gk_graph::write_graph(&g),
        min_keys.len(),
        keys.cardinality(),
        write_keys(&min_keys),
    ))
}

/// The ddmin shrinker reaches a 1-minimal counterexample — exercised
/// directly since (by Prop. 1) the chase never hands it a real divergence.
#[test]
fn shrinker_produces_minimal_counterexamples() {
    let input: Vec<u32> = (0..50).collect();
    let min = proptest::shrink::minimize_vec(&input, |v| v.contains(&3) && v.contains(&41));
    assert_eq!(min, vec![3, 41]);
    let single = proptest::shrink::minimize_vec(&input, |v| v.iter().sum::<u32>() >= 49);
    assert_eq!(single, vec![49]);
    let all = proptest::shrink::minimize_vec(&[7u32], |v| !v.is_empty());
    assert_eq!(all, vec![7]);
}

// ---------------------------------------------------------------------------
// Generated workloads (richer structure, planted truth)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On generated workloads with planted ground truth, every algorithm
    /// recovers exactly the truth, for arbitrary seeds and key shapes.
    #[test]
    fn generated_workloads_are_recovered(
        seed in any::<u64>(),
        c in 0usize..3,
        d in 1usize..3,
    ) {
        let cfg = GenConfig::google()
            .with_scale(0.04)
            .with_keys(6)
            .with_chain(c)
            .with_radius(d)
            .with_seed(seed);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        let expected = chase_reference(&w.graph, &keys, ChaseOrder::Deterministic)
            .identified_pairs();
        prop_assert_eq!(&expected, &w.truth, "reference chase must find the planted truth");
        prop_assert_eq!(em_mr(&w.graph, &keys, 3, MrVariant::Base).identified_pairs(), w.truth.clone());
        prop_assert_eq!(em_mr(&w.graph, &keys, 2, MrVariant::Opt).identified_pairs(), w.truth.clone());
        prop_assert_eq!(em_vc(&w.graph, &keys, 3, VcVariant::Base).identified_pairs(), w.truth.clone());
        prop_assert_eq!(
            em_vc(&w.graph, &keys, 2, VcVariant::Opt { k: 1 }).identified_pairs(),
            w.truth.clone()
        );
    }
}

// ---------------------------------------------------------------------------
// Answer-cache transparency
// ---------------------------------------------------------------------------

/// One protocol request line per op: mutations over the same tiny alphabet
/// `build_graph` uses, so inserts/deletes hit live vocabulary often.
fn cache_op_line(kind: u8, i: u8, v: u8) -> String {
    let (i, v) = (i % 10, v % 10);
    match kind % 6 {
        0 | 1 => format!("INSERT e{i}:t{} p{} \"v{}\"", i % 3, v % 4, v % 6),
        2 => format!("INSERT e{i}:t{} p{} e{v}:t{}", i % 3, v % 4, v % 3),
        3 => format!("DELETE e{i}:t{} p{} \"v{}\"", i % 3, v % 4, v % 6),
        4 => match v % 3 {
            0 => r#"ADDKEY key "KA" t0(x) { x -p0-> n*; }"#.into(),
            1 => r#"ADDKEY key "KB" t1(x) { x -p1-> n*; }"#.into(),
            _ => r#"ADDKEY key "KC" t2(x) { x -p2-> n*; x -p3-> m*; }"#.into(),
        },
        _ => format!("DROPKEY {}", ["KA", "KB", "KC", "QBASE"][(v % 4) as usize]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The answer cache must be invisible: a cache-enabled server answers
    /// every query byte-identically to a cache-disabled one across random
    /// interleavings of INSERT/DELETE/ADDKEY/DROPKEY and hot re-asks
    /// (which exercise the hit path on the cached side).
    #[test]
    fn answer_cache_is_transparent_across_interleavings(
        raw in raw_triples(),
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
    ) {
        let keys = KeySet::parse(
            r#"key "QBASE" t0(x) { x -p0-> n*; }"#,
        ).unwrap();
        let plain = Server::new(build_graph(&raw), keys.clone());
        let mut cached = Server::new(build_graph(&raw), keys);
        cached.set_cache_entries(32);

        let ask = |q: &str| {
            let want = plain.handle(q);
            // Twice on the cached side: first fills, second must hit.
            assert_eq!(cached.handle(q), want, "first ask of {q}");
            assert_eq!(cached.handle(q), want, "hot ask of {q}");
        };

        for &(kind, i, v) in &ops {
            let line = cache_op_line(kind, i, v);
            // Mutations are deterministic, so their answers (including
            // ERR for misses/duplicates) must agree too.
            prop_assert_eq!(plain.handle(&line), cached.handle(&line), "op {}", line);
            ask(&format!("SAME e{} e{}", i % 10, v % 10));
            ask(&format!("DUPS e{}", i % 10));
            ask(&format!("REP e{}", v % 10));
        }
    }

    /// Span tracing must be invisible too: a server whose every request is
    /// traced (recorder on, ops applied through `TRACE`) answers each
    /// wrapped request byte-identically to an untraced server, across
    /// random interleavings of mutations and queries — and every trace is
    /// a well-formed tree whose root is named after the wrapped verb.
    #[test]
    fn tracing_is_transparent_across_interleavings(
        raw in raw_triples(),
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
    ) {
        let keys = KeySet::parse(
            r#"key "QBASE" t0(x) { x -p0-> n*; }"#,
        ).unwrap();
        let plain = Server::new(build_graph(&raw), keys.clone());
        let mut traced = Server::new(build_graph(&raw), keys);
        traced.set_trace_buffer(8);

        let ask = |line: &str| {
            let want = plain.handle(line);
            let req = Request::parse(line).unwrap();
            let verb = req.verb();
            match traced.execute(Request::Trace { inner: Box::new(req) }) {
                Response::Trace { root, answer, .. } => {
                    assert_eq!(answer.render(), want, "traced answer of {line}");
                    assert_eq!(root.name, verb, "root span of {line}");
                    // The rendered tree itself round-trips through the wire
                    // format (indented span lines, counters intact).
                    let parsed = keys_for_graphs::metrics::TraceNode::parse_forest(
                        &root.render().lines().collect::<Vec<_>>(),
                        0,
                    );
                    assert!(parsed.is_some(), "tree of {line} must re-parse");
                }
                other => panic!("TRACE {line} answered {:?}", other),
            }
        };

        for &(kind, i, v) in &ops {
            ask(&cache_op_line(kind, i, v));
            ask(&format!("SAME e{} e{}", i % 10, v % 10));
            ask(&format!("DUPS e{}", i % 10));
            ask(&format!("REP e{}", v % 10));
        }
        // The recorder retained the tail of that traffic, newest first.
        match traced.execute(Request::parse("TRACES").unwrap()) {
            Response::Traces { captured, traces } => {
                prop_assert_eq!(captured, ops.len() as u64 * 4);
                prop_assert!(!traces.is_empty());
                prop_assert!(traces.windows(2).all(|w| w[0].id > w[1].id));
            }
            other => panic!("TRACES answered {other:?}"),
        }
    }
}
