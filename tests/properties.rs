//! Property-based tests over random graphs, random keys and generated
//! workloads: algorithm agreement, Church–Rosser, pairing soundness,
//! data locality, tour invariants, DSL/text round-trips.

use gk_datagen::{generate, GenConfig};
use keys_for_graphs::core::{candidate_pairs, write_keys, Tour};
use keys_for_graphs::isomorph::{
    eval_pair, eval_pair_enumerate, pairing_at, IdentityEq, MatchScope,
};
use keys_for_graphs::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random raw graphs + random keys
// ---------------------------------------------------------------------------

/// A random triple spec over a tiny alphabet: subject entity index, a
/// predicate, and either an object entity index or a value index.
#[derive(Clone, Debug)]
struct RawTriple {
    s: u8,
    p: u8,
    obj_entity: bool,
    o: u8,
}

fn raw_triples() -> impl Strategy<Value = Vec<RawTriple>> {
    prop::collection::vec(
        (0u8..10, 0u8..4, any::<bool>(), 0u8..10).prop_map(|(s, p, obj_entity, o)| RawTriple {
            s,
            p,
            obj_entity,
            o,
        }),
        1..24,
    )
}

/// Builds a graph from raw triples: entity i has type `t{i % 3}`.
fn build_graph(raw: &[RawTriple]) -> Graph {
    let mut b = GraphBuilder::new();
    let ents: Vec<EntityId> = (0..10)
        .map(|i| b.entity(&format!("e{i}"), &format!("t{}", i % 3)))
        .collect();
    for t in raw {
        let s = ents[t.s as usize];
        let p = format!("p{}", t.p);
        if t.obj_entity {
            b.link(s, &p, ents[t.o as usize]);
        } else {
            b.attr(s, &p, &format!("v{}", t.o % 6));
        }
    }
    b.freeze()
}

/// A small pool of structurally varied keys over the same alphabet; the
/// strategy picks a subset.
fn key_pool() -> Vec<Key> {
    let dsl = r#"
        key "A" t0(x) { x -p0-> n*; }
        key "B" t0(x) { x -p0-> n*; x -p1-> m*; }
        key "C" t1(x) { x -p1-> n*; x -p2-> y:t2; }
        key "D" t2(x) { x -p2-> n*; z:t1 -p2-> x; }
        key "E" t0(x) { x -p0-> n*; x -p3-> ~w:t1; }
        key "F" t1(x) { x -p0-> w:t1; w:t1 -p0-> x; }
        key "G" t2(x) { x -p1-> "v1"; x -p2-> n*; }
    "#;
    parse_keys(dsl).unwrap()
}

fn key_subset() -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0usize..7, 1..4).prop_map(|idx| {
        let pool = key_pool();
        let mut picked = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in idx {
            if seen.insert(i) {
                picked.push(pool[i].clone());
            }
        }
        picked
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel algorithms all compute exactly chase(G, Σ)
    /// (Theorems 6/10), on arbitrary graphs and key subsets.
    #[test]
    fn algorithms_agree_on_random_graphs(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        let expected = chase_reference(&g, &cks, ChaseOrder::Deterministic).identified_pairs();
        prop_assert_eq!(em_mr(&g, &cks, 2, MrVariant::Vf2).identified_pairs(), expected.clone());
        prop_assert_eq!(em_mr(&g, &cks, 3, MrVariant::Base).identified_pairs(), expected.clone());
        prop_assert_eq!(em_mr(&g, &cks, 2, MrVariant::Opt).identified_pairs(), expected.clone());
        prop_assert_eq!(em_vc(&g, &cks, 3, VcVariant::Base).identified_pairs(), expected.clone());
        prop_assert_eq!(
            em_vc(&g, &cks, 2, VcVariant::Opt { k: 2 }).identified_pairs(),
            expected
        );
    }

    /// Church–Rosser (Prop. 1): terminal chase results are order-invariant.
    #[test]
    fn chase_is_church_rosser(raw in raw_triples(), keys in key_subset(), seed in any::<u64>()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        let a = chase_reference(&g, &cks, ChaseOrder::Deterministic).identified_pairs();
        let b = chase_reference(&g, &cks, ChaseOrder::Shuffled(seed)).identified_pairs();
        prop_assert_eq!(a, b);
    }

    /// Pairing is a *sound* filter (Prop. 9a): any pair certified by a key
    /// under Eq0 is pairable by that key.
    #[test]
    fn pairing_is_necessary(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for &(a, b) in candidate_pairs(&g, &cks, CandidateMode::TypePairs).iter() {
            let t = g.entity_type(a);
            for &ki in cks.keys_on(t) {
                let q = &cks.keys[ki].pattern;
                if eval_pair(&g, q, a, b, &IdentityEq, MatchScope::whole_graph()) {
                    prop_assert!(
                        pairing_at(&g, q, a, b, None, None).pairable(q, a, b),
                        "identified but unpairable: {:?} {:?} key {}", a, b, ki
                    );
                }
            }
        }
    }

    /// The guided matcher and the enumerate-all baseline agree key-by-key.
    #[test]
    fn guided_equals_enumerate(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for &(a, b) in candidate_pairs(&g, &cks, CandidateMode::TypePairs).iter().take(40) {
            let t = g.entity_type(a);
            for &ki in cks.keys_on(t) {
                let q = &cks.keys[ki].pattern;
                let guided = eval_pair(&g, q, a, b, &IdentityEq, MatchScope::whole_graph());
                let brute =
                    eval_pair_enumerate(&g, q, a, b, &IdentityEq, None, None, usize::MAX);
                prop_assert_eq!(guided, brute, "pair {:?}/{:?} key {}", a, b, ki);
            }
        }
    }

    /// Data locality (§4.1): matching within the d-neighborhoods equals
    /// matching against the whole graph.
    #[test]
    fn d_neighborhood_locality(raw in raw_triples(), keys in key_subset()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for &(a, b) in candidate_pairs(&g, &cks, CandidateMode::TypePairs).iter().take(40) {
            let t = g.entity_type(a);
            let d = cks.radius_of_type(t);
            let h1 = d_neighborhood(&g, a, d);
            let h2 = d_neighborhood(&g, b, d);
            for &ki in cks.keys_on(t) {
                let q = &cks.keys[ki].pattern;
                let whole = eval_pair(&g, q, a, b, &IdentityEq, MatchScope::whole_graph());
                let local = eval_pair(&g, q, a, b, &IdentityEq, MatchScope::new(&h1, &h2));
                prop_assert_eq!(whole, local);
            }
        }
    }

    /// Tours are closed walks from the anchor covering every triple, of
    /// length exactly 2·|Q| (Lemma 11's bound).
    #[test]
    fn tours_cover_patterns(keys in key_subset(), raw in raw_triples()) {
        let g = build_graph(&raw);
        let cks = KeySet::new(keys).unwrap().compile(&g);
        for ck in &cks.keys {
            let tour = Tour::build(&ck.pattern);
            prop_assert_eq!(tour.len(), 2 * ck.pattern.size());
            let mut at = ck.pattern.anchor();
            let mut covered = vec![false; ck.pattern.size()];
            for (i, step) in tour.steps().iter().enumerate() {
                let tri = ck.pattern.triples()[step.triple as usize];
                let (from, to) = if step.forward { (tri.s, tri.o) } else { (tri.o, tri.s) };
                prop_assert_eq!(from, at);
                covered[step.triple as usize] = true;
                at = tour.slot_after(&ck.pattern, i);
                prop_assert_eq!(at, to);
            }
            prop_assert_eq!(at, ck.pattern.anchor());
            prop_assert!(covered.into_iter().all(|c| c));
        }
    }

    /// d-neighborhoods grow monotonically with d and are undirected.
    #[test]
    fn neighborhoods_monotone(raw in raw_triples(), e in 0u8..10) {
        let g = build_graph(&raw);
        let ent = g.entity_named(&format!("e{e}")).unwrap();
        let mut prev = 0;
        for d in 0..5 {
            let n = d_neighborhood(&g, ent, d).len();
            prop_assert!(n >= prev);
            prev = n;
        }
    }

    /// The key DSL round-trips: write → parse → identical keys.
    #[test]
    fn dsl_roundtrip(keys in key_subset()) {
        let text = write_keys(&keys);
        let again = parse_keys(&text).unwrap();
        prop_assert_eq!(keys, again);
    }
}

// ---------------------------------------------------------------------------
// Generated workloads (richer structure, planted truth)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On generated workloads with planted ground truth, every algorithm
    /// recovers exactly the truth, for arbitrary seeds and key shapes.
    #[test]
    fn generated_workloads_are_recovered(
        seed in any::<u64>(),
        c in 0usize..3,
        d in 1usize..3,
    ) {
        let cfg = GenConfig::google()
            .with_scale(0.04)
            .with_keys(6)
            .with_chain(c)
            .with_radius(d)
            .with_seed(seed);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        let expected = chase_reference(&w.graph, &keys, ChaseOrder::Deterministic)
            .identified_pairs();
        prop_assert_eq!(&expected, &w.truth, "reference chase must find the planted truth");
        prop_assert_eq!(em_mr(&w.graph, &keys, 3, MrVariant::Base).identified_pairs(), w.truth.clone());
        prop_assert_eq!(em_mr(&w.graph, &keys, 2, MrVariant::Opt).identified_pairs(), w.truth.clone());
        prop_assert_eq!(em_vc(&w.graph, &keys, 3, VcVariant::Base).identified_pairs(), w.truth.clone());
        prop_assert_eq!(
            em_vc(&w.graph, &keys, 2, VcVariant::Opt { k: 1 }).identified_pairs(),
            w.truth.clone()
        );
    }
}
