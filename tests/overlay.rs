//! Overlay ≡ rebuild: property tests for the epoch-based delta overlay.
//!
//! Random interleaved streams of inserts, deletes and compactions are
//! applied to an [`OverlayGraph`] and, in parallel, to a plain mirror set
//! of (subject, predicate, object) facts. After the stream:
//!
//! * every read the matchers use — `out`, `out_with`, `in_with`, `has`,
//!   `entities_of_type` — must answer exactly like a **from-scratch frozen
//!   rebuild** of the mirror;
//! * the terminal chase classes must agree across the reference,
//!   incremental and parallel engines (the latter at 1, 2 and 8 threads),
//!   computed on the overlay, with the reference chase of the rebuild;
//! * streaming the insert prefix through `EmIndex` (the monotone delta
//!   chase, with a tiny compaction threshold so epochs roll mid-stream)
//!   must land on the same classes as a cold rebuild.

use keys_for_graphs::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One streamed update.
#[derive(Clone, Debug)]
enum Op {
    /// Insert (e{s}, p{p}, e{o} | "v{o%6}"); creates entities on demand.
    Insert { s: u8, p: u8, ent: bool, o: u8 },
    /// Delete the same shape of triple if it is live; no-op otherwise.
    Delete { s: u8, p: u8, ent: bool, o: u8 },
    /// Fold the delta into a fresh base CSR (epoch bump).
    Compact,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..3, 0u8..12, 0u8..4, any::<bool>(), 0u8..12).prop_map(|(kind, s, p, ent, o)| {
            match kind {
                0 | 1 => Op::Insert { s, p, ent, o }, // insert-biased streams
                _ if s % 4 == 0 => Op::Compact,
                _ => Op::Delete { s, p, ent, o },
            }
        }),
        1..40,
    )
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Fact {
    Ent(String),
    Val(String),
}

/// The mirror: entity creation order (ids must align with the overlay's)
/// plus the live fact set.
#[derive(Default)]
struct Mirror {
    ent_order: Vec<(String, String)>,
    known: BTreeSet<String>,
    facts: BTreeSet<(String, String, Fact)>,
}

impl Mirror {
    fn touch_entity(&mut self, name: &str, ty: &str) {
        if self.known.insert(name.to_string()) {
            self.ent_order.push((name.to_string(), ty.to_string()));
        }
    }

    /// A from-scratch frozen rebuild with identical entity ids.
    fn rebuild(&self) -> Graph {
        let mut b = GraphBuilder::new();
        for (name, ty) in &self.ent_order {
            b.entity(name, ty);
        }
        for (s, p, o) in &self.facts {
            let se = b.entity(s, &ty_of(s));
            match o {
                Fact::Ent(oname) => {
                    let oe = b.entity(oname, &ty_of(oname));
                    b.link(se, p, oe);
                }
                Fact::Val(v) => b.attr(se, p, v),
            }
        }
        b.freeze()
    }
}

fn ent_name(i: u8) -> String {
    format!("e{i}")
}

fn ty_of(name: &str) -> String {
    let i: u32 = name[1..].parse().unwrap();
    format!("t{}", i % 3)
}

fn val_name(o: u8) -> String {
    format!("v{}", o % 6)
}

/// Applies the stream to an overlay (seeded from an empty frozen base) and
/// the mirror, in lockstep. Returns the overlay and the insert-only prefix
/// as triple text (for the EmIndex streaming check).
fn run_stream(ops: &[Op]) -> (OverlayGraph, Mirror) {
    let mut ov = OverlayGraph::new(GraphBuilder::new().freeze());
    let mut mirror = Mirror::default();
    for op in ops {
        match op {
            Op::Insert { s, p, ent, o } => {
                let sname = ent_name(*s);
                let sty = ty_of(&sname);
                let se = ov.entity(&sname, &sty);
                mirror.touch_entity(&sname, &sty);
                let pid = ov.intern_pred(&format!("p{p}"));
                let obj = if *ent {
                    let oname = ent_name(*o);
                    let oty = ty_of(&oname);
                    let oe = ov.entity(&oname, &oty);
                    mirror.touch_entity(&oname, &oty);
                    mirror
                        .facts
                        .insert((sname.clone(), format!("p{p}"), Fact::Ent(oname)));
                    Obj::Entity(oe)
                } else {
                    let v = val_name(*o);
                    let vid = ov.intern_value(&v);
                    mirror
                        .facts
                        .insert((sname.clone(), format!("p{p}"), Fact::Val(v)));
                    Obj::Value(vid)
                };
                ov.insert_triple(se, pid, obj);
            }
            Op::Delete { s, p, ent, o } => {
                let sname = ent_name(*s);
                let (Some(se), Some(pid)) = (ov.entity_named(&sname), ov.pred(&format!("p{p}")))
                else {
                    continue;
                };
                let obj = if *ent {
                    match ov.entity_named(&ent_name(*o)) {
                        Some(oe) => Obj::Entity(oe),
                        None => continue,
                    }
                } else {
                    match ov.value(&val_name(*o)) {
                        Some(v) => Obj::Value(v),
                        None => continue,
                    }
                };
                let t = gk_graph::Triple {
                    s: se,
                    p: pid,
                    o: obj,
                };
                if ov.delete_triple(t) {
                    let fact = if *ent {
                        Fact::Ent(ent_name(*o))
                    } else {
                        Fact::Val(val_name(*o))
                    };
                    assert!(mirror.facts.remove(&(sname, format!("p{p}"), fact)));
                }
            }
            Op::Compact => ov = ov.compacted(),
        }
    }
    (ov, mirror)
}

/// All live triples of a view, resolved to strings (interner-id agnostic).
fn string_triples<V: GraphView>(v: &V) -> BTreeSet<(String, String, Fact)> {
    let mut out = BTreeSet::new();
    for e in v.entities() {
        for &(p, o) in v.out(e) {
            let fact = match o {
                Obj::Entity(oe) => Fact::Ent(v.entity_label(oe)),
                Obj::Value(val) => Fact::Val(v.value_str(val).to_string()),
            };
            out.insert((v.entity_label(e), v.pred_str(p).to_string(), fact));
        }
    }
    out
}

/// Per-node reverse adjacency resolved to strings.
fn string_reverse<V: GraphView>(v: &V) -> BTreeMap<Fact, BTreeSet<(String, String)>> {
    let mut out: BTreeMap<Fact, BTreeSet<(String, String)>> = BTreeMap::new();
    for e in v.entities() {
        for &(p, s) in v.in_entity(e) {
            out.entry(Fact::Ent(v.entity_label(e)))
                .or_default()
                .insert((v.pred_str(p).to_string(), v.entity_label(s)));
        }
    }
    for vid in 0..v.num_values() as u32 {
        let vid = ValueId(vid);
        for &(p, s) in v.in_value(vid) {
            out.entry(Fact::Val(v.value_str(vid).to_string()))
                .or_default()
                .insert((v.pred_str(p).to_string(), v.entity_label(s)));
        }
    }
    out
}

const KEYS: &str = r#"
    key "A" t0(x) { x -p0-> n*; }
    key "B" t0(x) { x -p0-> n*; x -p1-> m*; }
    key "C" t1(x) { x -p1-> n*; x -p2-> y:t2; }
    key "D" t2(x) { x -p2-> n*; z:t1 -p2-> x; }
    key "E" t1(x) { x -p0-> n*; x -p3-> ~w:t2; }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The read path: every matcher-facing lookup on the overlay answers
    /// exactly like a from-scratch frozen rebuild of the same fact set.
    #[test]
    fn overlay_reads_equal_frozen_rebuild(ops in ops()) {
        let (ov, mirror) = run_stream(&ops);
        let frozen = mirror.rebuild();

        prop_assert_eq!(ov.num_entities(), frozen.num_entities());
        prop_assert_eq!(ov.num_triples(), frozen.num_triples());
        // Entity ids align (creation order is mirrored).
        for e in GraphView::entities(&ov) {
            prop_assert_eq!(
                GraphView::entity_label(&ov, e),
                frozen.entity_label(e)
            );
            prop_assert_eq!(
                GraphView::type_str(&ov, GraphView::entity_type(&ov, e)),
                frozen.type_str(frozen.entity_type(e))
            );
        }
        // Forward adjacency (out / out_with / has).
        prop_assert_eq!(string_triples(&ov), string_triples(&frozen));
        for (s, p, o) in string_triples(&frozen) {
            let se = ov.entity_named(&s).unwrap();
            let pid = ov.pred(&p).unwrap();
            let obj = match &o {
                Fact::Ent(n) => Obj::Entity(ov.entity_named(n).unwrap()),
                Fact::Val(v) => Obj::Value(ov.value(v).unwrap()),
            };
            prop_assert!(GraphView::has(&ov, se, pid, obj));
            // out_with yields exactly the p-labeled run.
            prop_assert!(GraphView::out_with(&ov, se, pid).iter().any(|&(q, oo)| q == pid && oo == obj));
        }
        // Reverse adjacency (in_entity / in_value / in_with).
        prop_assert_eq!(string_reverse(&ov), string_reverse(&frozen));
        // Type buckets.
        for t in 0..3u8 {
            let of_ov = match GraphView::etype(&ov, &format!("t{t}")) {
                Some(tid) => GraphView::entities_of_type(&ov, tid)
                    .iter()
                    .map(|e| GraphView::entity_label(&ov, e))
                    .collect::<Vec<_>>(),
                None => Vec::new(),
            };
            let of_frozen = match frozen.etype(&format!("t{t}")) {
                Some(tid) => frozen
                    .entities_of_type(tid)
                    .iter()
                    .map(|&e| frozen.entity_label(e))
                    .collect::<Vec<_>>(),
                None => Vec::new(),
            };
            prop_assert_eq!(of_ov, of_frozen, "type bucket t{}", t);
        }
    }

    /// The chase path: all three engines over the overlay view land on the
    /// classes of the reference chase over the frozen rebuild.
    #[test]
    fn overlay_chase_equals_frozen_rebuild_at_all_engines(ops in ops()) {
        let (ov, mirror) = run_stream(&ops);
        let frozen = mirror.rebuild();
        let ks = KeySet::parse(KEYS).unwrap();
        let expected = chase_reference(
            &frozen,
            &ks.compile(&frozen),
            ChaseOrder::Deterministic,
        ).eq.classes();

        let compiled = ks.compile(&ov);
        for engine in [ChaseEngine::Reference, ChaseEngine::Incremental] {
            let got = engine.full_chase(&ov, &compiled, ChaseOrder::Deterministic).eq.classes();
            prop_assert_eq!(&got, &expected, "engine={}", engine);
        }
        for threads in [1usize, 2, 8] {
            let got = ChaseEngine::Parallel { threads }
                .full_chase(&ov, &compiled, ChaseOrder::Deterministic)
                .eq
                .classes();
            prop_assert_eq!(&got, &expected, "parallel threads={}", threads);
        }
    }

    /// The serving path: streaming the inserts of the op stream through
    /// `EmIndex` — delta chases on the overlay, with a tiny compaction
    /// threshold so epochs roll mid-stream — matches a cold rebuild, at
    /// every engine.
    #[test]
    fn streamed_index_matches_cold_rebuild(ops in ops()) {
        let empty = || GraphBuilder::new().freeze();
        let ks = || KeySet::parse(KEYS).unwrap();
        for engine in [
            ChaseEngine::Reference,
            ChaseEngine::Incremental,
            ChaseEngine::Parallel { threads: 2 },
        ] {
            let mut idx = EmIndex::with_engine(empty(), ks(), engine);
            idx.set_compact_threshold(8);
            for op in &ops {
                let Op::Insert { s, p, ent, o } = op else { continue };
                let sname = ent_name(*s);
                let line = if *ent {
                    let oname = ent_name(*o);
                    format!("{sname}:{} p{p} {oname}:{}", ty_of(&sname), ty_of(&oname))
                } else {
                    format!("{sname}:{} p{p} \"{}\"", ty_of(&sname), val_name(*o))
                };
                idx.insert(&parse_triple_specs(&line).unwrap()).unwrap();
            }
            let snap = idx.snapshot();
            let frozen = snap.graph.materialize();
            let cold = EmIndex::with_engine(frozen, ks(), ChaseEngine::Reference);
            let cold_snap = cold.snapshot();
            prop_assert_eq!(
                snap.eq.classes(),
                cold_snap.eq.classes(),
                "engine={}",
                engine
            );
            for e in GraphView::entities(&snap.graph) {
                prop_assert_eq!(snap.rep(e), cold_snap.rep(e));
            }
        }
    }
}
