//! Golden protocol transcripts: scripted sessions against an in-process
//! [`Server`], rendered as `>> request` / response blocks and compared
//! byte-for-byte with the checked-in files under `tests/golden/`. Any
//! protocol change — wording, field order, added counters — fails here
//! without a hand-written assert, and `UPDATE_GOLDEN=1 cargo test --test
//! golden` re-records the transcripts for an intentional change.
//!
//! The only nondeterministic protocol outputs are the startup wall-clock
//! in `STATS` and the snapshot byte size (platform-sensitive); their
//! values are masked before comparison.

use keys_for_graphs::prelude::*;
use std::fmt::Write as _;

const KEYS: &str = r#"
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

const GRAPH: &str = r#"
    alb1:album  name_of       "Anthology 2"
    alb1:album  release_year  "1996"
    alb1:album  recorded_by   art1:artist
    art1:artist name_of       "The Beatles"
    alb2:album  name_of       "Anthology 2"
    alb2:album  release_year  "1996"
    alb2:album  recorded_by   art2:artist
    art2:artist name_of       "The Beatles"
    alb3:album  name_of       "Abbey Road"
    alb3:album  recorded_by   art3:artist
    art3:artist name_of       "The Beatles"
"#;

fn server() -> Server {
    Server::new(parse_graph(GRAPH).unwrap(), KeySet::parse(KEYS).unwrap())
}

/// Replaces the digits after every `key=` occurrence with `_` — used for
/// the timing field, which changes run to run.
fn mask_field(text: &str, key: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    let needle = format!("{key}=");
    while let Some(at) = rest.find(&needle) {
        let after = at + needle.len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Runs the script through an arbitrary responder and renders the
/// transcript (the cluster router is only reachable over TCP, so the
/// responder is not always a `&Server`).
fn transcript_by(mut answer: impl FnMut(&str) -> String, script: &[&str]) -> String {
    let mut out = String::new();
    for line in script {
        let resp = answer(line);
        let _ = writeln!(out, ">> {line}");
        let mut masked = resp;
        for field in ["startup_micros", "bytes", "uptime_secs"] {
            masked = mask_field(&masked, field);
        }
        let _ = writeln!(out, "{masked}");
        out.push('\n');
    }
    out
}

/// Runs the script and renders the transcript.
fn transcript(server: &Server, script: &[&str]) -> String {
    transcript_by(|line| server.handle(line), script)
}

/// Replaces every exposition sample value (`gk_* <n>`) with `_`: the
/// metric names and their order are the locked surface, the counts and
/// timings change run to run.
fn mask_sample_values(text: &str) -> String {
    let mut out = String::new();
    for l in text.lines() {
        if !l.starts_with('#') && !l.starts_with(">>") {
            if let Some((head, val)) = l.rsplit_once(' ') {
                if head.starts_with("gk_")
                    && !val.is_empty()
                    && val.bytes().all(|b| b.is_ascii_digit())
                {
                    let _ = writeln!(out, "{head} _");
                    continue;
                }
            }
        }
        let _ = writeln!(out, "{l}");
    }
    out
}

/// Compares against `tests/golden/<name>.txt`, or re-records it when the
/// `UPDATE_GOLDEN` environment variable is set.
fn check_golden(name: &str, got: &str) {
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert!(
        got == want,
        "golden transcript {name} diverged.\n--- want ---\n{want}\n--- got ---\n{got}\n\
         re-record with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn golden_queries() {
    let s = server();
    check_golden(
        "queries",
        &transcript(
            &s,
            &[
                "PING",
                "SAME alb1 alb2",
                "SAME alb1 alb3",
                "SAME art1 art2",
                "DUPS alb1",
                "DUPS alb3",
                "REP alb2",
                "REP alb3",
                "EXPLAIN art1 art2",
                "EXPLAIN alb1 alb3",
                "SAME ghost alb1",
                "SAME alb1",
                "FROB x",
                "HELP",
            ],
        ),
    );
}

#[test]
fn golden_framing() {
    // The raw TCP byte stream for a pipelined session with interleaved
    // blank lines (a `query --stdin` script with a trailing newline pair
    // produces exactly this shape). Blank lines yield NO response
    // paragraph, so the paragraphs stay aligned with the requests — a
    // spurious `ERR` for a blank line would shift every answer after it.
    use keys_for_graphs::server::serve;
    use std::io::{Read, Write};

    let s = std::sync::Arc::new(server());
    let handle = serve(std::sync::Arc::clone(&s), "127.0.0.1:0", 1).unwrap();
    let script = "PING\n\nSAME alb1 alb2\n\n\nDUPS alb1\nREP alb2\n\nQUIT\n";
    let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
    conn.write_all(script.as_bytes()).unwrap();
    let mut raw = String::new();
    // QUIT answers BYE and closes the connection, ending the read.
    conn.read_to_string(&mut raw).unwrap();
    handle.stop();

    let mut got = String::new();
    for line in script.lines() {
        let _ = writeln!(got, ">> {line}");
    }
    got.push('\n');
    got.push_str(&raw);
    check_golden("framing", &got);
}

#[test]
fn golden_net() {
    // The event loop's connection-lifecycle surface: `ERR busy` at the
    // --max-conns admission door, `ERR request too long` for an
    // oversized request line (both close the connection), and the
    // QUIT/BYE framing of a pipelined session. `<EOF>` marks where the
    // server hung up.
    use keys_for_graphs::server::{serve_with, NetModel, ServeOptions};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let s = std::sync::Arc::new(server());
    let handle = serve_with(
        s,
        "127.0.0.1:0",
        &ServeOptions {
            threads: 1,
            model: NetModel::Epoll,
            max_conns: 1,
            metrics_addr: None,
        },
    )
    .unwrap();
    let mut got = String::new();

    // conn1 takes the only admission slot and stays open.
    let conn1 = TcpStream::connect(handle.addr()).unwrap();
    let mut conn1_writer = conn1.try_clone().unwrap();
    let mut conn1_reader = BufReader::new(conn1);
    conn1_writer.write_all(b"PING\n").unwrap();
    got.push_str(">> [conn1] PING\n");
    let mut line = String::new();
    loop {
        line.clear();
        conn1_reader.read_line(&mut line).unwrap();
        got.push_str(&line);
        if line == "\n" {
            break; // paragraph terminator
        }
    }

    // conn2 arrives while the slot is held: turned away at the door.
    let mut conn2 = TcpStream::connect(handle.addr()).unwrap();
    got.push_str(">> [conn2] connect (slot held by conn1)\n");
    let mut raw = String::new();
    conn2.read_to_string(&mut raw).unwrap();
    got.push_str(&raw);
    got.push_str("<EOF>\n");

    // conn1 sends a request line one byte over the bound.
    let mut big = vec![b'A'; keys_for_graphs::server::MAX_REQUEST_LINE + 1];
    big.push(b'\n');
    conn1_writer.write_all(&big).unwrap();
    got.push_str(">> [conn1] <oversized request line, 65537 bytes>\n");
    let mut raw = String::new();
    conn1_reader.read_to_string(&mut raw).unwrap();
    got.push_str(&raw);
    got.push_str("<EOF>\n");

    // conn1's teardown freed the slot; a fresh connection's pipelined
    // session runs to QUIT/BYE. (Admission can briefly race the
    // teardown, so retry until admitted — the transcript only records
    // the admitted session.)
    let mut raw = String::new();
    for _ in 0..100 {
        raw.clear();
        let mut conn3 = TcpStream::connect(handle.addr()).unwrap();
        let _ = conn3.write_all(b"PING\nQUIT\n");
        let _ = conn3.read_to_string(&mut raw);
        if raw.starts_with("PONG") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    got.push_str(">> [conn3] PING\n>> [conn3] QUIT\n");
    got.push_str(&raw);
    got.push_str("<EOF>\n");

    handle.stop();
    check_golden("net", &got);
}

#[test]
fn golden_keys() {
    // Runtime key management: ADDKEY (monotone delta chase), DROPKEY
    // (full re-chase), the KEYS listing with its epoch, the new
    // active_keys=/key_epoch= STATS fields, and the uniform
    // `ERR usage:` answers for malformed requests.
    let s = server();
    check_golden(
        "keys",
        &transcript(
            &s,
            &[
                "KEYS",
                r#"ADDKEY key "AN" artist(x) { x -name_of-> n*; }"#,
                "SAME art1 art3",
                "EXPLAIN art1 art3",
                "KEYS",
                "DROPKEY AN",
                "SAME art1 art3",
                "DROPKEY ghost",
                r#"ADDKEY key "Q2" album(x) { x -name_of-> n*; }"#,
                "ADDKEY not a key",
                "PING extra",
                "STATS verbose",
                "KEYS now",
                "DROPKEY",
                "STATS",
            ],
        ),
    );
}

#[test]
fn golden_updates() {
    let s = server();
    check_golden(
        "updates",
        &transcript(
            &s,
            &[
                "STATS",
                r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
                "SAME alb1 alb3",
                "SAME art1 art3",
                r#"INSERT alb1:album name_of "Anthology 2""#,
                r#"INSERT alb1:person name_of "X""#,
                r#"DELETE alb2:album release_year "1996""#,
                "SAME alb1 alb2",
                r#"DELETE ghost:album name_of "X""#,
                "STATS",
            ],
        ),
    );
}

#[test]
fn golden_durability() {
    // A durable server in a throwaway data dir: the SNAPSHOT/COMPACT verbs
    // and the extended STATS fields (durability=, wal_records=,
    // snapshot_seq=) are part of the protocol surface and locked here.
    let dir = std::env::temp_dir().join(format!("gk-golden-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (s, _) = Server::with_durability(
        parse_graph(GRAPH).unwrap(),
        KeySet::parse(KEYS).unwrap(),
        ChaseEngine::default(),
        &Durability::in_dir(&dir),
    )
    .unwrap();
    check_golden(
        "durability",
        &transcript(
            &s,
            &[
                "STATS",
                r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
                "SNAPSHOT",
                r#"DELETE alb3:album release_year "1996" ; alb3:album name_of "Anthology 2""#,
                "STATS",
                "COMPACT",
                "STATS",
                "SAME alb1 alb3",
            ],
        ),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_metrics() {
    // The observability surface: every registered metric name, its kind,
    // its help line, and the exposition order are part of the protocol and
    // locked here (values masked — they are counts and wall-clock).
    let s = server();
    let raw = transcript(
        &s,
        &[
            "PING",
            "SAME alb1 alb2",
            r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
            "SAME ghost alb1",
            "METRICS now",
            "METRICS",
        ],
    );
    check_golden("metrics", &mask_sample_values(&raw));
}

#[test]
fn golden_trace() {
    // The tracing surface: TRACE's span-tree-plus-answer shape, the
    // EXPLAIN-ANALYZE phases of a traced query, the mutation phases of a
    // traced INSERT, the flight recorder's TRACES dump, and the
    // traces_captured STATS field. Wall micros are masked (the `micros`
    // mask also covers STATS' startup_micros); span names, counters and
    // nesting are the locked surface.
    let mut s = server();
    s.set_trace_buffer(4);
    let script = [
        "TRACE DUPS alb1",
        "TRACE SAME alb1 alb3",
        r#"TRACE INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
        "TRACE SAME alb1 alb3",
        "TRACE PING",
        "TRACE TRACE PING",
        "TRACES 3",
        "TRACES",
        "STATS",
    ];
    let mut out = String::new();
    for line in script {
        let resp = s.handle(line);
        let _ = writeln!(out, ">> {line}");
        let mut masked = resp;
        for field in ["micros", "bytes", "uptime_secs"] {
            masked = mask_field(&masked, field);
        }
        let _ = writeln!(out, "{masked}");
        out.push('\n');
    }
    check_golden("trace", &out);
}

#[test]
fn golden_cluster() {
    // The cluster surface through the router front: queries answered
    // byte-identically to standalone by a converged shard, mutation acks
    // with the cluster-wide closure growth and convergence round count,
    // STATS surfacing the answering shard's role, the cluster-internal
    // verbs turned away at the front door, and METRICS answering the
    // router's own gk_cluster_* registry (values masked).
    let cluster = Cluster::launch(
        GRAPH,
        KEYS,
        "127.0.0.1:0",
        &ClusterOpts {
            shards: 2,
            // Deterministic transcript: no background heartbeat sweeps
            // bumping the round counters between scripted requests.
            heartbeat: std::time::Duration::ZERO,
            ..ClusterOpts::default()
        },
    )
    .unwrap();
    let mut front = Client::lazy(cluster.router_addr());
    let raw = transcript_by(
        |line| front.request_line(line).unwrap(),
        &[
            "PING",
            "STATS",
            r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
            "SAME alb1 alb3",
            "DUPS alb1",
            "REP alb3",
            "EXPLAIN alb1 alb3",
            r#"ADDKEY key "AN" artist(x) { x -name_of-> n*; }"#,
            "SAME art1 art3",
            r#"DELETE alb2:album release_year "1996""#,
            "SAME alb1 alb2",
            "KEYS",
            "SHARDCHASE 0",
            r#"TRACE INSERT x:album name_of "y""#,
            "FROB x",
            "METRICS",
        ],
    );
    cluster.stop();
    check_golden("cluster", &mask_sample_values(&raw));
}

#[test]
fn golden_updates_parallel_engine() {
    // The same update script under the parallel engine: identical answers,
    // engine/threads surfaced in STATS. Bit-identical transcripts across
    // engines would be a coincidence (counters differ), so this has its
    // own golden file.
    let s = Server::with_engine(
        parse_graph(GRAPH).unwrap(),
        KeySet::parse(KEYS).unwrap(),
        ChaseEngine::Parallel { threads: 2 },
    );
    check_golden(
        "updates_parallel",
        &transcript(
            &s,
            &[
                "STATS",
                r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
                "SAME alb1 alb3",
                r#"DELETE alb2:album release_year "1996""#,
                "SAME alb1 alb2",
                "STATS",
            ],
        ),
    );
}
