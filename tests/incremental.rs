//! Integration tests for incremental maintenance of `chase(G, Σ)`:
//!
//! * insert-only delta chases must equal a from-scratch chase on the
//!   extended graph (monotonicity), including on generated workloads with
//!   recursive keys;
//! * deletions are **not** monotone — reusing a stale `Eq` after removing a
//!   witness provably over-approximates, which is exactly why the serving
//!   layer's delete path falls back to a full re-chase.

use gk_datagen::{generate, GenConfig};
use keys_for_graphs::core::{chase_incremental, chase_reference, ChaseOrder};
use keys_for_graphs::prelude::*;

const KEYS: &str = r#"
    key "Q1" album(x)  { x -name_of-> n*; x -recorded_by-> a:artist; }
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

#[test]
fn insert_only_delta_equals_full_rechase() {
    // Staged inserts over the paper's Fig. 2 shape: each batch's delta
    // chase must land on exactly chase(G', Σ).
    let g = parse_graph(
        r#"
        alb1:album  name_of     "Anthology 2"
        alb1:album  recorded_by art1:artist
        art1:artist name_of     "The Beatles"
        alb2:album  name_of     "Anthology 2"
        alb2:album  recorded_by art2:artist
        art2:artist name_of     "The Beatles"
        "#,
    )
    .unwrap();
    let ks = KeySet::parse(KEYS).unwrap();
    let mut prev = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic).eq;
    let mut g = g;

    let batches: &[&[(&str, &str, &str)]] = &[
        // Years arrive: Q2 fires, Q3 cascades.
        &[
            ("alb1", "release_year", "1996"),
            ("alb2", "release_year", "1996"),
        ],
        // An unrelated album: no new identifications.
        &[("alb9", "name_of", "Abbey Road")],
        // It gains the duplicate attributes too.
        &[("alb9", "release_year", "1996")],
        &[("alb9", "name_of", "Anthology 2")],
    ];
    for (i, batch) in batches.iter().enumerate() {
        let mut b = GraphBuilder::from_graph(&g);
        let mut touched = Vec::new();
        for &(name, pred, value) in batch.iter() {
            let e = b.entity(name, "album");
            b.attr(e, pred, value);
            touched.push(e);
        }
        let g2 = b.freeze();
        let keys2 = ks.compile(&g2);
        let inc = chase_incremental(&g2, &keys2, &prev, &touched);
        let full = chase_reference(&g2, &keys2, ChaseOrder::Deterministic);
        assert_eq!(
            inc.identified_pairs(),
            full.identified_pairs(),
            "delta chase diverged from scratch chase after batch {i}"
        );
        prev = inc.eq;
        g = g2;
    }
    // The final closure: alb1=alb2=alb9 and art1=art2.
    assert_eq!(prev.num_identified_pairs(), 4);
}

#[test]
fn incremental_matches_full_on_generated_workload() {
    // A generated workload with planted duplicates, ingested in two halves:
    // chase the first half, then feed the remaining triples as one
    // insert-only batch and compare against the from-scratch result.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.05)
            .with_keys(6)
            .with_seed(11),
    );
    let all: Vec<_> = w.graph.triples().collect();
    let half = all.len() / 2;

    // First half: copy triples [0, half) into a fresh builder carrying
    // every entity (ids stay aligned with the full graph).
    let mut b = GraphBuilder::new();
    for e in w.graph.entities() {
        let ty = b.intern_type(w.graph.type_str(w.graph.entity_type(e)));
        let fresh = b.fresh_entity(ty);
        assert_eq!(fresh, e);
    }
    for t in &all[..half] {
        let p = b.intern_pred(w.graph.pred_str(t.p));
        match t.o {
            Obj::Entity(o) => b.link_ids(t.s, p, o),
            Obj::Value(v) => {
                let nv = b.intern_value(w.graph.value_str(v));
                b.attr_ids(t.s, p, nv);
            }
        }
    }
    let g1 = b.freeze();
    let prev = chase_reference(&g1, &w.keys.compile(&g1), ChaseOrder::Deterministic).eq;

    // Second half arrives: extend and chase incrementally.
    let mut b2 = GraphBuilder::from_graph(&g1);
    let mut touched = Vec::new();
    for t in &all[half..] {
        let p = b2.intern_pred(w.graph.pred_str(t.p));
        match t.o {
            Obj::Entity(o) => {
                b2.link_ids(t.s, p, o);
                touched.push(o);
            }
            Obj::Value(v) => {
                let nv = b2.intern_value(w.graph.value_str(v));
                b2.attr_ids(t.s, p, nv);
            }
        }
        touched.push(t.s);
    }
    touched.sort_unstable();
    touched.dedup();
    let g2 = b2.freeze();
    let keys2 = w.keys.compile(&g2);
    let inc = chase_incremental(&g2, &keys2, &prev, &touched);
    let full = chase_reference(&g2, &keys2, ChaseOrder::Deterministic);
    assert_eq!(inc.identified_pairs(), full.identified_pairs());
    assert_eq!(
        inc.identified_pairs(),
        w.truth,
        "and both equal the planted truth"
    );
}

#[test]
fn deletion_is_not_monotone_so_stale_eq_overapproximates() {
    // Remove the witness of an applied key: the stale Eq still contains the
    // merge, while the re-chased graph does not — the non-monotone case the
    // incremental path must NOT be used for.
    let g = parse_graph(
        r#"
        a1:album name_of "X"
        a1:album release_year "2000"
        a2:album name_of "X"
        a2:album release_year "2000"
        "#,
    )
    .unwrap();
    let ks = KeySet::parse(KEYS).unwrap();
    let before = chase_reference(&g, &ks.compile(&g), ChaseOrder::Deterministic);
    assert_eq!(before.eq.num_identified_pairs(), 1);

    // Drop a2's release year (rebuild without that triple).
    let mut b = GraphBuilder::new();
    for e in g.entities() {
        let ty = b.intern_type(g.type_str(g.entity_type(e)));
        let fresh = b.fresh_entity(ty);
        assert_eq!(fresh, e);
        b.set_entity_name(fresh, &g.entity_label(e));
    }
    let a2 = g.entity_named("a2").unwrap();
    let year = g.pred("release_year").unwrap();
    for t in g.triples() {
        if t.s == a2 && t.p == year {
            continue;
        }
        let p = b.intern_pred(g.pred_str(t.p));
        match t.o {
            Obj::Entity(o) => b.link_ids(t.s, p, o),
            Obj::Value(v) => {
                let nv = b.intern_value(g.value_str(v));
                b.attr_ids(t.s, p, nv);
            }
        }
    }
    let g2 = b.freeze();
    let keys2 = ks.compile(&g2);

    let full = chase_reference(&g2, &keys2, ChaseOrder::Deterministic);
    assert!(full.identified_pairs().is_empty(), "the witness is gone");
    assert!(
        before.eq.num_identified_pairs() > full.eq.num_identified_pairs(),
        "stale Eq over-approximates after deletion — the full re-chase is required"
    );
}

#[test]
fn server_delete_path_catches_the_non_monotone_case() {
    // The same scenario through the serving layer: DELETE must retract the
    // merge via the full-rechase fallback, and STATS must attribute it to
    // that path.
    let g = parse_graph(
        r#"
        a1:album name_of "X"
        a1:album release_year "2000"
        a2:album name_of "X"
        a2:album release_year "2000"
        "#,
    )
    .unwrap();
    let server = Server::new(g, KeySet::parse(KEYS).unwrap());
    assert!(server.handle("SAME a1 a2").starts_with("YES"));

    let r = server.handle(r#"DELETE a2:album release_year "2000""#);
    assert!(r.starts_with("OK mode=full-rechase"), "{r}");
    assert!(
        server.handle("SAME a1 a2").starts_with("NO"),
        "merge retracted"
    );
    let stats = server.handle("STATS");
    assert!(stats.contains("full_rechases=1"), "{stats}");
    assert!(stats.contains("incremental_advances=0"), "{stats}");
}
