//! Round-trip property tests for the typed protocol surface:
//!
//! * `Request::parse(req.render()) == Ok(req)` and
//!   `render(parse(line)) == line` over *generated* `Request` values —
//!   the lossless pair the typed client relies on;
//! * every response a live server produces re-parses into a typed
//!   [`Response`] whose `render()` is byte-identical to what the server
//!   sent — so `handle()` (parse → execute → render) and `execute()` are
//!   the same API at two altitudes.

use keys_for_graphs::core::KeySet;
use keys_for_graphs::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generated requests
// ---------------------------------------------------------------------------

/// A wire-safe token: what entity names, key names and batch words can
/// look like on a single request line (no whitespace, no newline). The
/// pool deliberately includes verb-shaped words — arguments must never be
/// confused with verbs.
fn token(i: u8, v: u8) -> String {
    let stem = ["alb", "x", "same", "keys", "n_0", "ping"][(i % 6) as usize];
    format!("{stem}{v}")
}

/// A `;`-separated triple batch in its canonical one-space form.
fn batch(seed: u8, n: u8) -> String {
    (0..(n % 3) + 1)
        .map(|k| {
            let s = token(seed.wrapping_add(k), k);
            let p = token(seed.wrapping_mul(3).wrapping_add(k), 9);
            if (seed + k).is_multiple_of(2) {
                format!("{s}:t {p} \"v{k}\"")
            } else {
                format!("{s}:t {p} o{k}:t")
            }
        })
        .collect::<Vec<_>>()
        .join(" ; ")
}

/// Decodes an integer tuple into a `Request` — the shimmed proptest has
/// no `prop_oneof`, so variants are chosen arithmetically.
fn decode_request(kind: u8, a: u8, b: u8) -> Request {
    match kind % 16 {
        0 => Request::Same {
            a: token(a, 0),
            b: token(b, 1),
        },
        1 => Request::Dups {
            entity: token(a, b),
        },
        2 => Request::Rep {
            entity: token(a, b),
        },
        3 => Request::Explain {
            a: token(a, 2),
            b: token(b, 3),
        },
        4 => Request::Insert { batch: batch(a, b) },
        5 => Request::Delete { batch: batch(b, a) },
        6 => Request::AddKey {
            dsl: format!("key \"K{a}\" t(x) {{ x -p{b}-> v*; }}"),
        },
        7 => Request::DropKey { name: token(a, b) },
        8 => Request::Keys,
        9 => Request::Snapshot,
        10 => Request::Compact,
        11 => Request::Stats,
        12 => Request::Ping,
        13 => Request::Help,
        // TRACE wraps any non-TRACE request; recurse with a shifted kind
        // that can never land back on 14.
        14 => Request::Trace {
            inner: Box::new(decode_request(kind.wrapping_add(a) % 14, b, a)),
        },
        _ => Request::Traces {
            n: a.is_multiple_of(2).then_some(b as usize),
        },
    }
}

fn request() -> impl Strategy<Value = Request> {
    (0u8..16, 0u8..255, 0u8..255).prop_map(|(kind, a, b)| decode_request(kind, a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_render_parse_roundtrips(req in request()) {
        let line = req.render();
        prop_assert_eq!(Request::parse(&line), Ok(req.clone()), "{}", line);
        // And the rendered form is a fixpoint: parse → render is identity
        // on canonical lines.
        let again = Request::parse(&line).unwrap().render();
        prop_assert_eq!(again, line);
    }

    #[test]
    fn noncanonical_spacing_and_case_parse_to_the_same_request(
        req in request(),
        pad in 0usize..3,
    ) {
        // Lowercase the verb and pad the edges: same typed value.
        let line = req.render();
        let (verb, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        let sloppy = format!(
            "{}{}{}{}{}",
            " ".repeat(pad),
            verb.to_lowercase(),
            if rest.is_empty() { "" } else { " " },
            rest,
            " ".repeat(pad),
        );
        prop_assert_eq!(Request::parse(&sloppy), Ok(req));
    }
}

// ---------------------------------------------------------------------------
// Server-produced responses
// ---------------------------------------------------------------------------

const KEYS: &str = r#"
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

const GRAPH: &str = r#"
    alb1:album  name_of       "Anthology 2"
    alb1:album  release_year  "1996"
    alb1:album  recorded_by   art1:artist
    art1:artist name_of       "The Beatles"
    alb2:album  name_of       "Anthology 2"
    alb2:album  release_year  "1996"
    alb2:album  recorded_by   art2:artist
    art2:artist name_of       "The Beatles"
    alb3:album  name_of       "Abbey Road"
    alb3:album  recorded_by   art3:artist
    art3:artist name_of       "The Beatles"
"#;

/// Every response the server gives to this script must re-parse and
/// re-render byte-identically.
#[test]
fn every_server_response_reparses_losslessly() {
    let dir = std::env::temp_dir().join(format!("gk-proto-lossless-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut server, _) = Server::with_durability(
        parse_graph(GRAPH).unwrap(),
        KeySet::parse(KEYS).unwrap(),
        keys_for_graphs::core::ChaseEngine::default(),
        &Durability::in_dir(&dir),
    )
    .unwrap();
    // With the flight recorder on, `TRACES` answers real span trees — the
    // richest wire format in the protocol must round-trip too.
    server.set_trace_buffer(4);
    let script = [
        "PING",
        "HELP",
        "STATS",
        "SAME alb1 alb2",
        "SAME alb1 alb3",
        "DUPS alb1",
        "DUPS alb3",
        "REP alb2",
        "EXPLAIN art1 art2",
        "EXPLAIN alb1 alb3",
        "SAME ghost alb1",
        "SAME alb1",
        "FROB x",
        "",
        r#"INSERT alb3:album release_year "1996" ; alb3:album name_of "Anthology 2""#,
        r#"INSERT alb1:album name_of "Anthology 2""#,
        r#"DELETE alb2:album release_year "1996""#,
        "KEYS",
        r#"ADDKEY key "AN" artist(x) { x -name_of-> n*; }"#,
        "KEYS",
        "DROPKEY AN",
        "DROPKEY ghost",
        "SNAPSHOT",
        "COMPACT",
        "TRACE DUPS alb1",
        "TRACE SAME alb1 ghost",
        r#"TRACE INSERT alb4:album name_of "Abbey Road""#,
        "TRACE PING",
        "TRACE TRACE PING",
        "TRACES",
        "TRACES 2",
        "TRACES zero",
        "STATS",
    ];
    for line in script {
        let text = server.handle(line);
        let parsed = Response::parse(&text)
            .unwrap_or_else(|e| panic!("response to {line:?} did not parse: {e}\n{text}"));
        assert_eq!(
            parsed.render(),
            text,
            "response to {line:?} must re-render byte-identically"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `handle` is exactly `parse → execute → render`, including the error
/// path: a line that parses executes identically both ways.
#[test]
fn handle_equals_parse_execute_render() {
    let server = Server::new(parse_graph(GRAPH).unwrap(), KeySet::parse(KEYS).unwrap());
    for line in [
        "PING",
        "SAME alb1 alb2",
        "DUPS alb1",
        "EXPLAIN art1 art2",
        "KEYS",
        "STATS",
        "HELP",
    ] {
        let via_types = server.execute(Request::parse(line).unwrap()).render();
        assert_eq!(server.handle(line), via_types, "{line}");
    }
    // Malformed lines answer the parse error's ERR form.
    match Request::parse("SAME alb1") {
        Err(e) => assert_eq!(server.handle("SAME alb1"), format!("ERR {e}")),
        Ok(_) => panic!("arity error expected"),
    }
}
