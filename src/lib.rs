//! # keys-for-graphs
//!
//! A complete, production-quality Rust implementation of **“Keys for
//! Graphs”** (Wenfei Fan, Zhe Fan, Chao Tian, Xin Luna Dong — PVLDB 8(12),
//! 2015): keys defined as graph patterns, possibly recursively, interpreted
//! via subgraph isomorphism; and parallel **entity matching** — computing
//! all entity pairs a key set identifies (`chase(G, Σ)`).
//!
//! This crate is the facade over the workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`graph`] | triple-store substrate (entities, values, types, CSR adjacency, d-neighborhoods) |
//! | [`isomorph`] | matching engines: guided paired matcher, enumerate-all baseline, pairing relations |
//! | [`mapreduce`] | in-process MapReduce framework (the Hadoop stand-in) |
//! | [`vertexcentric`] | asynchronous vertex-centric engine (the GraphLab stand-in) |
//! | [`core`] | keys, the DSL, the chase, `EM_MR`/`EM_VC` algorithm families |
//! | [`datagen`] | workload generators with planted ground truth |
//! | [`store`] | durable persistence: binary snapshots, write-ahead log, crash recovery |
//! | [`server`] | resident entity-resolution service with incremental ingest, runtime key management and optional durability |
//! | [`client`] | typed blocking TCP client with N-deep request pipelining |
//! | [`cluster`] | horizontally sharded service: router/coordinator driving the distributed chase over N shard servers |
//!
//! ## Quickstart
//!
//! ```
//! use keys_for_graphs::prelude::*;
//!
//! // A knowledge-graph fragment (Fig. 2 of the paper): two records of the
//! // same album under different ids.
//! let g = parse_graph(r#"
//!     alb1:album  name_of       "Anthology 2"
//!     alb1:album  release_year  "1996"
//!     alb2:album  name_of       "Anthology 2"
//!     alb2:album  release_year  "1996"
//! "#).unwrap();
//!
//! // Q2: an album is identified by its name and release year.
//! let keys = KeySet::parse(r#"
//!     key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
//! "#).unwrap();
//!
//! // Entity matching with the vertex-centric algorithm, 4 workers.
//! let outcome = em_vc(&g, &keys.compile(&g), 4, VcVariant::Opt { k: 4 });
//! assert_eq!(outcome.identified_pairs().len(), 1);
//! ```

pub use gk_client as client;
pub use gk_cluster as cluster;
pub use gk_core as core;
pub use gk_datagen as datagen;
pub use gk_graph as graph;
pub use gk_isomorph as isomorph;
pub use gk_mapreduce as mapreduce;
pub use gk_metrics as metrics;
pub use gk_server as server;
pub use gk_store as store;
pub use gk_vertexcentric as vertexcentric;

/// The most common imports in one place.
pub mod prelude {
    pub use gk_client::{Client, Pipeline};
    pub use gk_cluster::{Cluster, ClusterOpts, Coordinator};
    pub use gk_core::{
        chase_parallel, chase_reference, em_mr, em_mr_sim, em_vc, em_vc_sim, key_violations,
        parse_keys, satisfies, set_violations, CandidateMode, ChaseEngine, ChaseOrder,
        CompiledKeySet, Key, KeySet, MatchOutcome, MrVariant, ParallelOpts, RunReport, Term,
        VcVariant,
    };
    pub use gk_graph::{
        d_neighborhood, parse_graph, parse_triple_specs, EntityId, Graph, GraphBuilder, GraphStats,
        GraphView, NodeId, Obj, OverlayGraph, PredId, TripleSpec, TypeId, ValueId,
    };
    pub use gk_server::{
        EmIndex, KeyChange, RecoveryReport, Request, RequestError, Response, Server,
    };
    pub use gk_store::{Durability, FsyncMode, Store, WalOp, WalRecord};
}
